//! [`AppendLog`]: a mutable segment stack over a sealed v2 log.
//!
//! A [`PagedLog`] is read-only — mutating it used to mean decoding the
//! whole file into a resident [`ProvGraph`], mutating that, and
//! rewriting everything ("promotion"). `AppendLog` instead layers an
//! in-memory **overlay** plus an on-disk WAL **tail** (see
//! [`crate::tail`]) over the sealed base:
//!
//! - appended nodes live in the overlay, with ids continuing the base's
//!   dense id space (`base_nodes..`);
//! - visibility changes to sealed nodes (tombstones, zoom hiding) live
//!   in an override map consulted before the base's visibility bitmap —
//!   newest segment wins;
//! - adjacency added by appends is kept in side maps and concatenated
//!   after the base's CSR rows. Appended ids are strictly larger than
//!   every base id, so concatenation preserves the ascending order the
//!   sealed rows have — postings- and limit-driven scans stay correct.
//!
//! Every mutation commits by appending one durable tail record *before*
//! touching the overlay; [`AppendLog::open`] replays the surviving tail
//! records over the base, so a crash loses at most the record being
//! written (and torn-write recovery truncates exactly that, see the
//! tail module's recovery rule).
//!
//! [`AppendLog::compact`] merges everything back into a fresh sealed v2
//! segment: decode base, replay overlay through [`ProvGraph`]'s public
//! construction API, rewrite atomically (temp + rename), drop the tail.
//! Node ids and visibility are unchanged by compaction, so derived
//! structures keyed by id (the reach index) survive it.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use lipstick_core::graph::{kind_heap_bytes, InvocationInfo, ZoomStash, RETIRED_STASH};
use lipstick_core::obs::vec_alloc_bytes;
use lipstick_core::query::{plan_zoom_out, ZoomModulePlan};
use lipstick_core::store::GraphStore;
use lipstick_core::{InvocationId, NodeId, NodeKind, ProvGraph, Role};

use crate::error::{Result, StorageError};
use crate::io::{default_io, StorageIo};
use crate::log::write_graph_v2_io;
use crate::paged::PagedLog;
use crate::tail::{self, TailInvocation, TailNode, TailRecord, TAIL_HEADER_LEN};

/// One appended (tail) node, fully resident. The overlay is expected to
/// stay small relative to the base — COMPACT folds it away.
#[derive(Debug, Clone)]
struct OverlayNode {
    kind: NodeKind,
    role: Role,
    preds: Vec<NodeId>,
    succs: Vec<NodeId>,
    deleted: bool,
    zoom_hidden: bool,
}

impl OverlayNode {
    fn is_visible(&self) -> bool {
        !self.deleted && !self.zoom_hidden
    }
}

/// Mutable visibility state for a sealed base node. Present only for
/// nodes a tail mutation touched; absent means "as sealed".
#[derive(Debug, Clone, Copy)]
struct BaseOverride {
    deleted: bool,
    zoom_hidden: bool,
}

/// A sealed v2 log plus its mutable tail segment.
pub struct AppendLog {
    path: PathBuf,
    tail_path: PathBuf,
    /// Every file operation goes through this seam, so tests can
    /// substitute a fault-injecting disk (see [`crate::io`]).
    io: Arc<dyn StorageIo>,
    base: PagedLog,
    base_len: u64,
    base_nodes: usize,
    base_invocations: usize,
    /// Clean tail length in bytes (0 = no tail header written yet).
    tail_len: u64,
    /// A commit failed partway, so the on-disk tail may carry a torn
    /// suffix past `tail_len`; the next commit truncates it away before
    /// appending.
    tail_dirty: bool,
    tail_records: usize,
    overlay: Vec<OverlayNode>,
    overrides: HashMap<u32, BaseOverride>,
    /// Successors appended to base (or earlier-overlay) rows, keyed by
    /// the *source* id. Values are ascending (ids are allocated in
    /// commit order).
    extra_succs: HashMap<u32, Vec<NodeId>>,
    /// Predecessors appended to existing rows — only zoom composites do
    /// this (composite → module-output edges), and ZoomIn removes them
    /// again, so these are empty whenever no module is zoomed out.
    extra_preds: HashMap<u32, Vec<NodeId>>,
    /// Merged invocation table: the base's, then appended ones.
    invocations: Vec<InvocationInfo>,
    stashes: Vec<ZoomStash>,
    zoomed_modules: HashMap<String, u32>,
    /// Faults from base incarnations retired by compaction, so
    /// `records_read` stays monotonic across COMPACT.
    carried_faults: usize,
}

fn tail_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tail");
    PathBuf::from(os)
}

impl AppendLog {
    /// Open a sealed v2 log for appending: recover the tail sidecar (if
    /// any), truncate its torn suffix, and replay the surviving records.
    pub fn open(path: impl AsRef<Path>) -> Result<AppendLog> {
        AppendLog::open_with_io(path.as_ref(), default_io())
    }

    /// [`AppendLog::open`] through an explicit IO implementation, which
    /// the log retains for all subsequent commits and compactions.
    pub fn open_with_io(path: &Path, io: Arc<dyn StorageIo>) -> Result<AppendLog> {
        let path = path.to_path_buf();
        let base = PagedLog::open_with_io(&path, io.as_ref())?;
        let base_len = io.len(&path)?;
        let mut log = AppendLog {
            tail_path: tail_path_for(&path),
            path,
            io,
            base_len,
            base_nodes: base.index().node_count(),
            base_invocations: base.invocations().len(),
            invocations: base.invocations().to_vec(),
            base,
            tail_len: 0,
            tail_dirty: false,
            tail_records: 0,
            overlay: Vec::new(),
            overrides: HashMap::new(),
            extra_succs: HashMap::new(),
            extra_preds: HashMap::new(),
            stashes: Vec::new(),
            zoomed_modules: HashMap::new(),
            carried_faults: 0,
        };
        log.recover_tail()?;
        Ok(log)
    }

    fn recover_tail(&mut self) -> Result<()> {
        let data = match self.io.read(&self.tail_path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let (records, clean) = match tail::recover(&data, self.base_len, self.base_nodes as u64) {
            Ok(ok) => ok,
            Err(_) => {
                // Header torn, or the tail binds to a different base: a
                // crash between COMPACT's rename and its tail unlink
                // leaves exactly such a stale sidecar, whose contents
                // the rename already made durable. Discard it —
                // best-effort, because the first commit recreates the
                // tail with a truncating write anyway.
                let _ = self.io.unlink(&self.tail_path);
                return Ok(());
            }
        };
        for record in &records {
            self.apply_record(record)?;
        }
        if clean < data.len() {
            self.io.truncate(&self.tail_path, clean as u64)?;
        }
        self.tail_len = clean as u64;
        self.tail_records = records.len();
        Ok(())
    }

    /// Number of committed tail records currently layered on the base.
    pub fn tail_records(&self) -> usize {
        self.tail_records
    }

    /// Clean tail size in bytes (0 when no tail exists).
    pub fn tail_len(&self) -> u64 {
        self.tail_len
    }

    /// Records faulted from disk, monotonic across compactions.
    pub fn faults(&self) -> usize {
        self.carried_faults + self.base.faults()
    }

    /// Decode-and-checksum every sealed record (tail records were
    /// checksum-verified at recovery and live records never leave
    /// memory unverified).
    pub fn verify_all(&self) -> Result<()> {
        self.base.verify_all()
    }

    /// Module names currently zoomed out, in zoom (stash) order — the
    /// same order the resident graph reports, so `ZOOM IN` of all
    /// modules behaves identically across backends.
    pub fn zoomed_out_modules(&self) -> Vec<&str> {
        let mut mods: Vec<(u32, &str)> = self
            .zoomed_modules
            .iter()
            .map(|(m, &idx)| (idx, m.as_str()))
            .collect();
        mods.sort_unstable_by_key(|&(idx, _)| idx);
        mods.into_iter().map(|(_, m)| m).collect()
    }

    /// The stash a `ZOOM IN` of this module would restore.
    pub fn stash_of(&self, module: &str) -> Option<&ZoomStash> {
        self.zoomed_modules
            .get(module)
            .map(|&idx| &self.stashes[idx as usize])
    }

    /// Lifetime stash count (hollow entries included) — the overflow
    /// bound [`plan_zoom_out`] checks.
    pub fn stash_count(&self) -> usize {
        self.stashes.len()
    }

    // ----- commit path -----

    /// Make one record durable. Called *before* the matching in-memory
    /// apply, so the tail never lags the overlay.
    ///
    /// Failure safety: `tail_len` only advances after the sync, so an
    /// error anywhere leaves the record unacknowledged. A failed append
    /// may still leave torn bytes on disk past `tail_len`; the dirty
    /// flag makes the *next* commit truncate them away first, so a
    /// retried commit can never land after garbage that recovery would
    /// stop at (which would silently orphan it).
    fn commit(&mut self, record: &TailRecord) -> Result<()> {
        let frame = tail::encode_record(record)?;
        if self.tail_dirty {
            self.io.truncate(&self.tail_path, self.tail_len)?;
            self.tail_dirty = false;
        }
        if self.tail_len == 0 {
            // Truncating write, not append: a stale tail from an
            // interrupted COMPACT (or a failed header write) may still
            // occupy this path, and its leftover bytes must not precede
            // the fresh header.
            let header = tail::encode_header(self.base_len, self.base_nodes as u64);
            self.io.create(&self.tail_path, &header)?;
            self.tail_len = TAIL_HEADER_LEN as u64;
        }
        self.tail_dirty = true;
        self.io.append(&self.tail_path, &frame)?;
        self.io.sync(&self.tail_path)?;
        self.tail_dirty = false;
        self.tail_len += frame.len() as u64;
        self.tail_records += 1;
        Ok(())
    }

    /// Fsync the tail segment if one exists. Commits already sync per
    /// record, so this only matters as a barrier (graceful shutdown).
    pub fn sync(&self) -> Result<()> {
        if self.tail_len == 0 {
            return Ok(());
        }
        self.io.sync(&self.tail_path)?;
        Ok(())
    }

    /// Commit a whole ingested workflow fragment (one atomic record):
    /// its nodes, edges, and invocations, id-shifted past the current
    /// graph. Returns the appended node ids.
    pub fn commit_fragment(&mut self, fragment: &ProvGraph) -> Result<Vec<NodeId>> {
        let zoomed = fragment.zoomed_out_modules();
        if !zoomed.is_empty() {
            return Err(StorageError::ZoomedGraph(
                zoomed.into_iter().map(String::from).collect(),
            ));
        }
        let node_off = self.node_count() as u32;
        let inv_off = self.invocations.len() as u32;
        let nodes: Vec<TailNode> = fragment
            .iter()
            .map(|(_, n)| TailNode {
                flags: u8::from(n.is_deleted()),
                role: offset_role(n.role, inv_off),
                kind: n.kind.clone(),
                preds: n.preds().iter().map(|p| NodeId(p.0 + node_off)).collect(),
            })
            .collect();
        let invocations: Vec<TailInvocation> = fragment
            .invocations()
            .iter()
            .map(|i| TailInvocation {
                module: i.module.clone(),
                execution: i.execution,
                m_node: NodeId(i.m_node.0 + node_off),
            })
            .collect();
        // Validate BEFORE the durable commit: a record that fails
        // validation must never reach the tail, where it would poison
        // every future replay.
        self.validate_append(&nodes, &invocations)?;
        let record = TailRecord::AppendGraph { nodes, invocations };
        self.commit(&record)?;
        let TailRecord::AppendGraph { nodes, invocations } = &record else {
            unreachable!()
        };
        self.apply_append(nodes, invocations)
    }

    /// Commit visibility tombstones (one `DELETE … PROPAGATE` cone, in
    /// deletion order).
    pub fn commit_tombstones(&mut self, ids: &[NodeId]) -> Result<()> {
        let count = self.node_count();
        if let Some(bad) = ids.iter().find(|id| id.index() >= count) {
            return Err(StorageError::Corrupt(format!(
                "tombstone for unknown node {bad}"
            )));
        }
        self.commit(&TailRecord::Tombstones { ids: ids.to_vec() })?;
        self.apply_tombstones_mem(ids)
    }

    /// Commit a ZoomOut already planned against this store (the caller
    /// plans so it can report validation errors before anything is
    /// durable). Returns the created composite ids.
    pub fn commit_zoom_out(&mut self, plans: Vec<ZoomModulePlan>) -> Result<Vec<NodeId>> {
        let modules: Vec<String> = plans.iter().map(|p| p.module.clone()).collect();
        self.commit(&TailRecord::ZoomOut { modules })?;
        Ok(self.apply_zoom_plans(plans))
    }

    /// Commit a ZoomIn of the given (resolved) module names. Returns
    /// each module's restored stash, so the caller can repair derived
    /// state from the exact touched sets.
    pub fn commit_zoom_in(&mut self, modules: &[String]) -> Result<Vec<ZoomStash>> {
        if let Some(bad) = modules
            .iter()
            .find(|m| !self.zoomed_modules.contains_key(*m))
        {
            return Err(StorageError::Corrupt(format!(
                "zoom-in of module '{bad}' which is not zoomed out"
            )));
        }
        self.commit(&TailRecord::ZoomIn {
            modules: modules.to_vec(),
        })?;
        self.apply_zoom_in_mem(modules)
    }

    // ----- replay / in-memory apply -----

    fn apply_record(&mut self, record: &TailRecord) -> Result<()> {
        match record {
            TailRecord::AppendGraph { nodes, invocations } => {
                self.apply_append(nodes, invocations)?;
            }
            TailRecord::Tombstones { ids } => self.apply_tombstones_mem(ids)?,
            TailRecord::ZoomOut { modules } => {
                // Re-plan against the recovered pre-zoom state: the plan
                // is a pure function of that state, so replay rebuilds
                // the identical hidden sets and composites.
                let refs: Vec<&str> = modules.iter().map(String::as_str).collect();
                let zoomed: Vec<String> = self.zoomed_modules.keys().cloned().collect();
                let plans =
                    plan_zoom_out(self, &refs, &zoomed, self.stashes.len()).map_err(|e| {
                        StorageError::Corrupt(format!("tail zoom-out replay failed: {e}"))
                    })?;
                self.apply_zoom_plans(plans);
            }
            TailRecord::ZoomIn { modules } => {
                if let Some(bad) = modules
                    .iter()
                    .find(|m| !self.zoomed_modules.contains_key(*m))
                {
                    return Err(StorageError::Corrupt(format!(
                        "tail zoom-in replay of module '{bad}' which is not zoomed out"
                    )));
                }
                self.apply_zoom_in_mem(modules)?;
            }
        }
        Ok(())
    }

    /// Validate an AppendGraph record against the current store: ids
    /// must stay dense and references in-bounds (forward references are
    /// allowed only within the record itself — an ingested workflow
    /// fragment wires edges in tracker order, not id order). Called
    /// before the durable commit *and* at replay.
    fn validate_append(&self, nodes: &[TailNode], new_invs: &[TailInvocation]) -> Result<()> {
        let node_base = self.node_count();
        let inv_limit = self.invocations.len() + new_invs.len();
        for (k, node) in nodes.iter().enumerate() {
            if let Some(bad) = node
                .preds
                .iter()
                .find(|p| p.index() >= node_base + nodes.len())
            {
                return Err(StorageError::Corrupt(format!(
                    "appended node references future node {bad}"
                )));
            }
            if node.preds.iter().any(|p| p.index() == node_base + k) {
                return Err(StorageError::Corrupt(format!(
                    "appended node {} references itself",
                    node_base + k
                )));
            }
            if let Some(inv) = node.role.invocation() {
                if inv.index() >= inv_limit {
                    return Err(StorageError::Corrupt(format!(
                        "appended node references unknown invocation {}",
                        inv.0
                    )));
                }
            }
        }
        if let Some(bad) = new_invs
            .iter()
            .find(|i| i.m_node.index() >= node_base + nodes.len())
        {
            return Err(StorageError::Corrupt(format!(
                "appended invocation references unknown m-node {}",
                bad.m_node
            )));
        }
        Ok(())
    }

    fn apply_append(
        &mut self,
        nodes: &[TailNode],
        new_invs: &[TailInvocation],
    ) -> Result<Vec<NodeId>> {
        self.validate_append(nodes, new_invs)?;
        // Two passes: materialize every overlay node first, then wire
        // successors — a pred may be a *later* node of this record.
        let mut created = Vec::with_capacity(nodes.len());
        for node in nodes {
            let id = NodeId(self.node_count() as u32);
            self.overlay.push(OverlayNode {
                kind: node.kind.clone(),
                role: node.role,
                preds: node.preds.clone(),
                succs: Vec::new(),
                deleted: node.is_deleted(),
                zoom_hidden: false,
            });
            created.push(id);
        }
        for (node, &id) in nodes.iter().zip(&created) {
            for &p in &node.preds {
                self.push_succ(p, id);
            }
        }
        for inv in new_invs {
            self.invocations.push(InvocationInfo {
                module: inv.module.clone(),
                execution: inv.execution,
                m_node: inv.m_node,
            });
        }
        Ok(created)
    }

    fn apply_tombstones_mem(&mut self, ids: &[NodeId]) -> Result<()> {
        let count = self.node_count();
        if let Some(bad) = ids.iter().find(|id| id.index() >= count) {
            return Err(StorageError::Corrupt(format!(
                "tombstone for unknown node {bad}"
            )));
        }
        for &id in ids {
            self.set_deleted(id, true);
        }
        Ok(())
    }

    /// Mirror of [`lipstick_core::query::apply_zoom_out`] over the
    /// overlay: hide, then create composites in plan order (so replay
    /// allocates the same ids a resident graph would).
    fn apply_zoom_plans(&mut self, plans: Vec<ZoomModulePlan>) -> Vec<NodeId> {
        let mut created = Vec::new();
        for plan in plans {
            for &h in &plan.hidden {
                self.set_zoom_hidden(h, true);
            }
            let stash_idx = self.stashes.len() as u32;
            let mut zoom_nodes = Vec::with_capacity(plan.composites.len());
            for comp in &plan.composites {
                let id = NodeId(self.node_count() as u32);
                self.overlay.push(OverlayNode {
                    kind: NodeKind::Zoomed { stash: stash_idx },
                    role: Role::Zoom(comp.invocation),
                    preds: comp.inputs.clone(),
                    succs: comp.outputs.clone(),
                    deleted: false,
                    zoom_hidden: false,
                });
                for &input in &comp.inputs {
                    self.push_succ(input, id);
                }
                for &output in &comp.outputs {
                    self.push_pred(output, id);
                }
                zoom_nodes.push(id);
                created.push(id);
            }
            self.zoomed_modules.insert(plan.module.clone(), stash_idx);
            self.stashes.push(ZoomStash {
                module: plan.module,
                hidden: plan.hidden,
                zoom_nodes,
            });
        }
        created
    }

    fn apply_zoom_in_mem(&mut self, modules: &[String]) -> Result<Vec<ZoomStash>> {
        let mut taken = Vec::with_capacity(modules.len());
        for module in modules {
            let idx = self.zoomed_modules.remove(module).ok_or_else(|| {
                StorageError::Corrupt(format!(
                    "zoom-in of module '{module}' which is not zoomed out"
                ))
            })?;
            // Hollow out the stash so later stash indices stay stable
            // (mirrors ProvGraph::take_stash).
            let hollow = ZoomStash {
                module: String::new(),
                hidden: Vec::new(),
                zoom_nodes: Vec::new(),
            };
            let stash = std::mem::replace(&mut self.stashes[idx as usize], hollow);
            for &h in &stash.hidden {
                self.set_zoom_hidden(h, false);
            }
            for &z in &stash.zoom_nodes {
                // Composites always live in the overlay (appends cannot
                // create live Zoomed nodes).
                let oi = z.index() - self.base_nodes;
                let preds = std::mem::take(&mut self.overlay[oi].preds);
                for p in preds {
                    self.remove_succ(p, z);
                }
                let succs = std::mem::take(&mut self.overlay[oi].succs);
                for s in succs {
                    self.remove_pred(s, z);
                }
                self.overlay[oi].deleted = true;
            }
            taken.push(stash);
        }
        Ok(taken)
    }

    // ----- adjacency / visibility plumbing -----

    fn push_succ(&mut self, from: NodeId, to: NodeId) {
        if from.index() < self.base_nodes {
            self.extra_succs.entry(from.0).or_default().push(to);
        } else {
            self.overlay[from.index() - self.base_nodes].succs.push(to);
        }
    }

    fn push_pred(&mut self, of: NodeId, pred: NodeId) {
        if of.index() < self.base_nodes {
            self.extra_preds.entry(of.0).or_default().push(pred);
        } else {
            self.overlay[of.index() - self.base_nodes].preds.push(pred);
        }
    }

    fn remove_succ(&mut self, from: NodeId, to: NodeId) {
        if from.index() < self.base_nodes {
            if let Some(v) = self.extra_succs.get_mut(&from.0) {
                v.retain(|s| *s != to);
            }
        } else {
            self.overlay[from.index() - self.base_nodes]
                .succs
                .retain(|s| *s != to);
        }
    }

    fn remove_pred(&mut self, of: NodeId, pred: NodeId) {
        if of.index() < self.base_nodes {
            if let Some(v) = self.extra_preds.get_mut(&of.0) {
                v.retain(|p| *p != pred);
            }
        } else {
            self.overlay[of.index() - self.base_nodes]
                .preds
                .retain(|p| *p != pred);
        }
    }

    fn set_deleted(&mut self, id: NodeId, deleted: bool) {
        if id.index() < self.base_nodes {
            let sealed_visible = self.base.index().is_visible(id);
            self.overrides
                .entry(id.0)
                .or_insert(BaseOverride {
                    deleted: !sealed_visible,
                    zoom_hidden: false,
                })
                .deleted = deleted;
        } else {
            self.overlay[id.index() - self.base_nodes].deleted = deleted;
        }
    }

    fn set_zoom_hidden(&mut self, id: NodeId, hidden: bool) {
        if id.index() < self.base_nodes {
            let sealed_visible = self.base.index().is_visible(id);
            self.overrides
                .entry(id.0)
                .or_insert(BaseOverride {
                    deleted: !sealed_visible,
                    zoom_hidden: false,
                })
                .zoom_hidden = hidden;
        } else {
            self.overlay[id.index() - self.base_nodes].zoom_hidden = hidden;
        }
    }

    // ----- compaction -----

    /// Merge the tail into a fresh sealed v2 segment: decode the base,
    /// replay the overlay, rewrite atomically, drop the tail, reopen.
    /// Node ids and visibility are preserved exactly, so id-keyed
    /// derived state (the reach index) stays valid across the call.
    ///
    /// Refuses while any module is zoomed out — same contract as
    /// persisting a resident graph (the stash is a view, not data).
    pub fn compact(&mut self) -> Result<()> {
        if !self.zoomed_modules.is_empty() {
            let mut names: Vec<String> = self.zoomed_modules.keys().cloned().collect();
            names.sort();
            return Err(StorageError::ZoomedGraph(names));
        }
        debug_assert!(
            self.extra_preds.values().all(Vec::is_empty),
            "only zoom composites prepend to sealed rows, and zoom-in removes them"
        );
        debug_assert!(self.overlay.iter().all(|n| !n.zoom_hidden));

        let mut graph = self.base.decode_full()?;
        for (&id, ov) in &self.overrides {
            graph.set_node_deleted(NodeId(id), ov.deleted);
        }
        for inv in &self.invocations[self.base_invocations..] {
            graph.register_invocation(inv.module.clone(), inv.execution, inv.m_node);
        }
        // Two passes, as in apply_append: an overlay node's pred may be
        // a later overlay node (fragment edges wire in tracker order).
        let overlay_base = graph.len() as u32;
        for node in &self.overlay {
            // Dead composites from a zoomed-in module: persist them the
            // way the sealed codec does, as retired zoom markers.
            let kind = if node.deleted && matches!(node.kind, NodeKind::Zoomed { .. }) {
                NodeKind::Zoomed {
                    stash: RETIRED_STASH,
                }
            } else {
                node.kind.clone()
            };
            let id = graph.add_node(kind, node.role);
            if node.deleted {
                graph.set_node_deleted(id, true);
            }
        }
        for (k, node) in self.overlay.iter().enumerate() {
            let id = NodeId(overlay_base + k as u32);
            for &p in &node.preds {
                graph.add_edge(p, id);
            }
        }

        // All fallible IO happens BEFORE the rename: the new base is
        // written, synced (rename makes metadata durable, not content —
        // skipping this sync would let a crash truncate the renamed
        // base), and re-opened from the temp path. An error anywhere up
        // to the rename leaves both disk and memory in the coherent
        // pre-compaction state; once the rename succeeds, the remaining
        // work is infallible in-memory bookkeeping. Compaction is
        // therefore all-or-nothing for callers.
        let tmp = self.path.with_extension("compact.tmp");
        write_graph_v2_io(&graph, &tmp, self.io.as_ref())?;
        self.io.sync(&tmp)?;
        let new_base = PagedLog::open_with_io(&tmp, self.io.as_ref())?;
        let new_len = self.io.len(&tmp)?;
        self.io.rename(&tmp, &self.path)?;
        // A crash (or unlink failure) here leaves a stale tail whose
        // header binds to the old base; recovery discards it, and the
        // next commit's truncating header write overwrites it.
        let _ = self.io.unlink(&self.tail_path);

        self.carried_faults += self.base.faults();
        self.base = new_base;
        self.base_len = new_len;
        self.base_nodes = self.base.index().node_count();
        self.base_invocations = self.base.invocations().len();
        self.invocations = self.base.invocations().to_vec();
        self.overlay.clear();
        self.overrides.clear();
        self.extra_succs.clear();
        self.extra_preds.clear();
        self.stashes.clear();
        self.zoomed_modules.clear();
        self.tail_len = 0;
        self.tail_dirty = false;
        self.tail_records = 0;
        Ok(())
    }

    fn overlay_heap_bytes(&self) -> usize {
        let mut bytes = vec_alloc_bytes(&self.overlay);
        for node in &self.overlay {
            bytes += kind_heap_bytes(&node.kind)
                + vec_alloc_bytes(&node.preds)
                + vec_alloc_bytes(&node.succs);
        }
        let entry = std::mem::size_of::<u32>() + std::mem::size_of::<Vec<NodeId>>() + 1;
        bytes += self.extra_succs.capacity() * entry + self.extra_preds.capacity() * entry;
        bytes += self
            .extra_succs
            .values()
            .chain(self.extra_preds.values())
            .map(vec_alloc_bytes)
            .sum::<usize>();
        bytes += self.overrides.capacity()
            * (std::mem::size_of::<u32>() + std::mem::size_of::<BaseOverride>() + 1);
        bytes += vec_alloc_bytes(&self.invocations)
            + self
                .invocations
                .iter()
                .map(|i| i.module.len())
                .sum::<usize>();
        bytes += vec_alloc_bytes(&self.stashes);
        for s in &self.stashes {
            bytes += s.module.len() + vec_alloc_bytes(&s.hidden) + vec_alloc_bytes(&s.zoom_nodes);
        }
        bytes
    }
}

/// Shift the invocation id a role carries when re-basing a fragment's
/// nodes onto a larger graph.
fn offset_role(role: Role, by: u32) -> Role {
    match role {
        Role::WorkflowInput | Role::Free => role,
        Role::Invocation(InvocationId(i)) => Role::Invocation(InvocationId(i + by)),
        Role::ModuleInput(InvocationId(i)) => Role::ModuleInput(InvocationId(i + by)),
        Role::ModuleOutput(InvocationId(i)) => Role::ModuleOutput(InvocationId(i + by)),
        Role::State(InvocationId(i)) => Role::State(InvocationId(i + by)),
        Role::Intermediate(InvocationId(i)) => Role::Intermediate(InvocationId(i + by)),
        Role::Zoom(InvocationId(i)) => Role::Zoom(InvocationId(i + by)),
    }
}

impl GraphStore for AppendLog {
    fn node_count(&self) -> usize {
        self.base_nodes + self.overlay.len()
    }

    fn is_visible(&self, id: NodeId) -> bool {
        if id.index() < self.base_nodes {
            match self.overrides.get(&id.0) {
                Some(ov) => !ov.deleted && !ov.zoom_hidden,
                None => self.base.index().is_visible(id),
            }
        } else {
            self.overlay
                .get(id.index() - self.base_nodes)
                .is_some_and(OverlayNode::is_visible)
        }
    }

    fn kind_of(&self, id: NodeId) -> NodeKind {
        if id.index() < self.base_nodes {
            self.base.kind_of(id)
        } else {
            self.overlay[id.index() - self.base_nodes].kind.clone()
        }
    }

    fn role_of(&self, id: NodeId) -> Role {
        if id.index() < self.base_nodes {
            self.base.role_of(id)
        } else {
            self.overlay[id.index() - self.base_nodes].role
        }
    }

    fn preds_of(&self, id: NodeId) -> Vec<NodeId> {
        if id.index() < self.base_nodes {
            let mut preds = self.base.preds_of(id);
            if let Some(extra) = self.extra_preds.get(&id.0) {
                preds.extend_from_slice(extra);
            }
            preds
        } else {
            self.overlay[id.index() - self.base_nodes].preds.clone()
        }
    }

    fn succs_of(&self, id: NodeId) -> Vec<NodeId> {
        if id.index() < self.base_nodes {
            let mut succs = self.base.index().succs(id).to_vec();
            if let Some(extra) = self.extra_succs.get(&id.0) {
                succs.extend_from_slice(extra);
            }
            succs
        } else {
            self.overlay[id.index() - self.base_nodes].succs.clone()
        }
    }

    fn invocations(&self) -> &[InvocationInfo] {
        &self.invocations
    }

    fn records_read(&self) -> usize {
        self.faults()
    }

    fn module_postings(&self, module: &str) -> Option<Vec<NodeId>> {
        // Sealed postings filtered through current visibility, then the
        // overlay's matches. Overlay ids all exceed base ids, so the
        // merged list stays ascending.
        let mut out: Vec<NodeId> = self
            .base
            .index()
            .module_postings(module)
            .iter()
            .copied()
            .filter(|&id| self.is_visible(id))
            .collect();
        for (k, node) in self.overlay.iter().enumerate() {
            if !node.is_visible() {
                continue;
            }
            if let Some(inv) = node.role.invocation() {
                if self
                    .invocations
                    .get(inv.index())
                    .is_some_and(|i| i.module == module)
                {
                    out.push(NodeId((self.base_nodes + k) as u32));
                }
            }
        }
        Some(out)
    }

    fn kind_postings(&self, kind: &str) -> Option<Vec<NodeId>> {
        let mut out: Vec<NodeId> = self
            .base
            .index()
            .kind_postings(kind)
            .iter()
            .copied()
            .filter(|&id| self.is_visible(id))
            .collect();
        for (k, node) in self.overlay.iter().enumerate() {
            if node.is_visible() && node.kind.name() == kind {
                out.push(NodeId((self.base_nodes + k) as u32));
            }
        }
        Some(out)
    }

    fn memory_breakdown(&self) -> Vec<(&'static str, usize)> {
        let mut parts = self.base.memory_breakdown();
        parts.push(("tail_overlay", self.overlay_heap_bytes()));
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::write_graph_v2;
    use lipstick_core::graph::GraphTracker;
    use lipstick_core::query::{zoom_in, zoom_out};
    use lipstick_core::store::compute_deletion_store;
    use lipstick_core::Tracker;
    use std::fs;

    /// Visible labelled nodes + visible edges, comparable across
    /// backends (the resident `visible_signature` generalized to any
    /// store).
    type StoreSignature = (Vec<(u32, String)>, Vec<(u32, u32)>);

    fn store_signature<S: GraphStore + ?Sized>(s: &S) -> StoreSignature {
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for i in 0..s.node_count() {
            let id = NodeId(i as u32);
            if !s.is_visible(id) {
                continue;
            }
            nodes.push((id.0, s.kind_of(id).label()));
            for t in s.succs_of(id) {
                if s.is_visible(t) {
                    edges.push((id.0, t.0));
                }
            }
        }
        edges.sort_unstable();
        (nodes, edges)
    }

    fn workflow_graph() -> ProvGraph {
        let mut t = GraphTracker::new();
        let a = t.base("a");
        let b = t.base("b");
        let c = t.base("c");
        t.begin_invocation("M", 0);
        let ab = t.times(&[a, b]);
        let i = t.module_input(ab);
        let x = t.times(&[i]);
        let o = t.module_output(x, &[]);
        t.end_invocation();
        t.begin_invocation("Agg", 0);
        let oc = t.plus(&[o, c]);
        let i2 = t.module_input(oc);
        let o2 = t.module_output(i2, &[]);
        t.end_invocation();
        t.plus(&[o2]);
        t.finish()
    }

    fn fragment_graph() -> ProvGraph {
        let mut t = GraphTracker::new();
        let d = t.base("d");
        t.begin_invocation("M", 1);
        let i = t.module_input(d);
        let o = t.module_output(i, &[]);
        t.end_invocation();
        t.plus(&[o]);
        t.finish()
    }

    /// Resident ground truth for appending `fragment` onto `base`.
    fn resident_append(base: &ProvGraph, fragment: &ProvGraph) -> ProvGraph {
        let mut g = base.clone();
        let node_off = g.len() as u32;
        let inv_off = g.invocations().len() as u32;
        for (_, n) in fragment.iter() {
            g.add_node(n.kind.clone(), offset_role(n.role, inv_off));
            debug_assert!(!n.is_deleted());
        }
        // Second pass: a fragment edge may point at a later fragment
        // node, so every node must exist before wiring.
        for (from, n) in fragment.iter() {
            let id = NodeId(from.0 + node_off);
            for p in n.preds() {
                g.add_edge(NodeId(p.0 + node_off), id);
            }
        }
        for inv in fragment.invocations() {
            g.register_invocation(
                inv.module.clone(),
                inv.execution,
                NodeId(inv.m_node.0 + node_off),
            );
        }
        g
    }

    fn temp_log(tag: &str, g: &ProvGraph) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lipstick-append-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("graph-{tag}.lpstk"));
        write_graph_v2(g, &path).unwrap();
        path
    }

    #[test]
    fn fragment_append_matches_resident_and_survives_reopen() {
        let base = workflow_graph();
        let path = temp_log("frag", &base);
        let expect = resident_append(&base, &fragment_graph());

        let mut log = AppendLog::open(&path).unwrap();
        let created = log.commit_fragment(&fragment_graph()).unwrap();
        assert_eq!(created.len(), fragment_graph().len());
        assert_eq!(store_signature(&log), store_signature(&expect));
        assert_eq!(log.invocations(), expect.invocations());

        let reopened = AppendLog::open(&path).unwrap();
        assert_eq!(reopened.tail_records(), 1);
        assert_eq!(store_signature(&reopened), store_signature(&expect));
        assert_eq!(reopened.invocations(), expect.invocations());
    }

    #[test]
    fn tombstones_match_resident_deletion() {
        let base = workflow_graph();
        let path = temp_log("del", &base);
        let mut log = AppendLog::open(&path).unwrap();

        let root = NodeId(0);
        let cone = compute_deletion_store(&log, root).unwrap();
        assert_eq!(cone, compute_deletion_store(&base, root).unwrap());
        log.commit_tombstones(&cone).unwrap();

        let mut expect = base.clone();
        for &id in &cone {
            expect.set_node_deleted(id, true);
        }
        assert_eq!(store_signature(&log), store_signature(&expect));
        let reopened = AppendLog::open(&path).unwrap();
        assert_eq!(store_signature(&reopened), store_signature(&expect));
    }

    #[test]
    fn zoom_cycle_matches_resident_and_replays() {
        let base = workflow_graph();
        let path = temp_log("zoom", &base);
        let mut log = AppendLog::open(&path).unwrap();

        let zoomed_names: Vec<String> = Vec::new();
        let plans = plan_zoom_out(&log, &["M"], &zoomed_names, log.stash_count()).unwrap();
        let created = log.commit_zoom_out(plans).unwrap();
        assert_eq!(created.len(), 1);

        let mut expect = base.clone();
        let resident_created = zoom_out(&mut expect, &["M"]).unwrap();
        assert_eq!(
            created.iter().map(|n| n.0).collect::<Vec<_>>(),
            resident_created.iter().map(|n| n.0).collect::<Vec<_>>()
        );
        assert_eq!(store_signature(&log), store_signature(&expect));
        assert_eq!(
            store_signature(&AppendLog::open(&path).unwrap()),
            store_signature(&expect)
        );

        let stashes = log.commit_zoom_in(&["M".to_string()]).unwrap();
        assert_eq!(stashes.len(), 1);
        assert_eq!(stashes[0].zoom_nodes, created);
        zoom_in(&mut expect, &["M"]).unwrap();
        assert_eq!(store_signature(&log), store_signature(&expect));
        assert_eq!(
            store_signature(&AppendLog::open(&path).unwrap()),
            store_signature(&expect)
        );
        assert!(log.zoomed_out_modules().is_empty());
    }

    #[test]
    fn compact_seals_tail_and_preserves_everything() {
        let base = workflow_graph();
        let path = temp_log("compact", &base);
        let mut log = AppendLog::open(&path).unwrap();

        log.commit_fragment(&fragment_graph()).unwrap();
        let cone = compute_deletion_store(&log, NodeId(2)).unwrap();
        log.commit_tombstones(&cone).unwrap();
        let before = store_signature(&log);
        let invocations_before = log.invocations().to_vec();
        let reads_before = log.faults();

        log.compact().unwrap();
        assert_eq!(log.tail_records(), 0);
        assert!(!tail_path_for(&path).exists());
        assert_eq!(store_signature(&log), before);
        assert_eq!(log.invocations(), invocations_before);
        assert!(log.faults() >= reads_before, "records_read stays monotonic");

        // And the sealed result stands alone.
        let reopened = AppendLog::open(&path).unwrap();
        assert_eq!(reopened.tail_records(), 0);
        assert_eq!(store_signature(&reopened), before);
        assert_eq!(reopened.invocations(), invocations_before);
    }

    #[test]
    fn compact_refuses_zoomed_graph() {
        let base = workflow_graph();
        let path = temp_log("compact-zoomed", &base);
        let mut log = AppendLog::open(&path).unwrap();
        let plans = plan_zoom_out(&log, &["M"], &[], log.stash_count()).unwrap();
        log.commit_zoom_out(plans).unwrap();
        match log.compact() {
            Err(StorageError::ZoomedGraph(names)) => assert_eq!(names, vec!["M".to_string()]),
            other => panic!("expected ZoomedGraph refusal, got {other:?}"),
        }
        // Still usable: zoom back in, then compaction goes through.
        log.commit_zoom_in(&["M".to_string()]).unwrap();
        let before = store_signature(&log);
        log.compact().unwrap();
        assert_eq!(store_signature(&log), before);
    }

    #[test]
    fn postings_merge_overlay_and_respect_visibility() {
        let base = workflow_graph();
        let path = temp_log("postings", &base);
        let mut log = AppendLog::open(&path).unwrap();
        log.commit_fragment(&fragment_graph()).unwrap();

        let expect = resident_append(&base, &fragment_graph());
        for module in ["M", "Agg", "nope"] {
            let got = log.module_postings(module).unwrap();
            let want: Vec<NodeId> = expect
                .iter_visible()
                .filter(|(_, n)| {
                    n.role
                        .invocation()
                        .is_some_and(|inv| expect.invocation(inv).module == module)
                })
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, want, "module postings for {module}");
        }
        for kind in ["base_tuple", "module_input", "plus", "delta"] {
            let got = log.kind_postings(kind).unwrap();
            let want: Vec<NodeId> = expect
                .iter_visible()
                .filter(|(_, n)| n.kind.name() == kind)
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, want, "kind postings for {kind}");
        }
    }
}
