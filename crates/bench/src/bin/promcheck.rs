//! Validate Prometheus text exposition — a file, stdin, or a live
//! `lipstick-serve` `/metrics` endpoint.
//!
//! CI's smoke step scrapes the self-test server through this binary so
//! a malformed exposition (bad name, sample before its TYPE line,
//! non-numeric value, broken histogram family) fails the build rather
//! than a dashboard three tools downstream.
//!
//! Usage:
//!   promcheck FILE          validate a saved exposition
//!   promcheck -             validate stdin
//!   promcheck --addr H:P    scrape http://H:P/metrics and validate

use std::io::Read;

use lipstick_core::obs::{parse_plain_samples, validate_prometheus_text};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let text = match args.first().map(String::as_str) {
        Some("--addr") => {
            let addr = args
                .get(1)
                .unwrap_or_else(|| usage("--addr needs HOST:PORT"));
            let (status, body) = lipstick_serve::client::http_get(addr.as_str(), "/metrics")
                .unwrap_or_else(|e| fail(&format!("scrape {addr}: {e}")));
            if status != "HTTP/1.1 200 OK" {
                fail(&format!("scrape {addr}: {status}"));
            }
            body
        }
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(&format!("stdin: {e}")));
            buf
        }
        Some(path) => {
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")))
        }
        None => usage("missing input"),
    };

    match validate_prometheus_text(&text) {
        Ok(()) => {
            let samples = parse_plain_samples(&text);
            println!(
                "ok: {} line(s), {} scalar sample(s)",
                text.lines().count(),
                samples.len()
            );
        }
        Err(e) => fail(&format!("invalid exposition: {e}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("promcheck: {msg}\nusage: promcheck FILE | promcheck - | promcheck --addr HOST:PORT");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("promcheck: {msg}");
    std::process::exit(1);
}
