//! # Observability: metrics registry and query-span tracing
//!
//! Lipstick's thesis is that fine-grained derivation records make a
//! workflow explainable after the fact; this module applies the same
//! idea to the engine itself. It is std-only (matching the workspace
//! rule) and has two halves:
//!
//! 1. A **process-wide metrics registry** ([`registry`]) of named
//!    [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s,
//!    rendered in Prometheus text exposition format. Counters are
//!    sharded across cache-line-padded atomics so the serve worker
//!    pool does not serialize on a single hot cell. Instruments are
//!    named `lipstick_<crate>_<name>` (e.g.
//!    `lipstick_storage_faults_total`).
//! 2. A **span tracer** ([`Tracer`] / [`TraceCtx`] / [`SpanGuard`]):
//!    lightweight RAII spans with parent links and monotonic timing,
//!    collected per statement into a [`QueryTrace`]. The executors
//!    thread a `TraceCtx` through parse → plan → execute →
//!    per-operator so `EXPLAIN ANALYZE` and the serve slow-query log
//!    can report *actuals* (rows, visited nodes, records faulted,
//!    wall time) instead of planner estimates. A disabled context is
//!    two `Option::None`s — the untraced hot path pays one branch per
//!    operator and no allocation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------------

const COUNTER_SHARDS: usize = 16;

/// One atomic per cache line so concurrent writers on different shards
/// do not false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Thread → shard assignment: threads round-robin over the shard space
/// once at first use, so a fixed worker pool spreads evenly.
fn counter_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing counter, sharded to avoid contention.
///
/// Usable both registered (via [`Registry::counter`]) and detached as a
/// per-instance counter (e.g. `PagedLog` fault accounting, where tests
/// assert per-log values that a process-global instrument cannot give).
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    pub fn new() -> Self {
        Counter {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.shards[counter_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A value that can go up and down (queue depths, epochs, entry counts).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The fixed bucket bounds (in microseconds) shared by every latency
/// histogram, from sub-scan-time to "something is badly wrong".
pub const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket histogram. Buckets store per-bucket (not cumulative)
/// counts; the cumulative Prometheus `_bucket{le=...}` series is
/// computed at render time so `observe` stays one `fetch_add`.
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 — the last is +Inf
    sum: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (not cumulative) counts as `(upper_bound, count)`
    /// pairs; the final pair's bound is `u64::MAX`, standing in for
    /// +Inf. For consumers (`bench_replay`'s latency report) that want
    /// the observed shape without scraping Prometheus text.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, (&'static str, Arc<Counter>)>,
    gauges: BTreeMap<&'static str, (&'static str, Arc<Gauge>)>,
    histograms: BTreeMap<&'static str, (&'static str, Arc<Histogram>)>,
}

/// The process-wide instrument registry behind `GET /metrics`.
///
/// Registration is idempotent by name: every call site asks for its
/// instrument by `lipstick_<crate>_<name>` and gets the shared handle,
/// so sessions, logs, and servers created at different times all feed
/// the same series.
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

/// The global registry. Tests may run many sessions and servers in one
/// process; registered values are process-wide sums (per-instance
/// accounting stays on detached [`Counter`]s where tests need it).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner::default()),
    })
}

impl Registry {
    /// Instruments are plain atomics, so a thread that panicked while
    /// holding the registry lock cannot have left the map half-updated;
    /// recover from poisoning instead of cascading the panic into every
    /// later metrics call (the serve crate bans panics on request
    /// paths, and `GET /metrics` is one).
    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut inner = self.locked();
        inner
            .counters
            .entry(name)
            .or_insert_with(|| (help, Arc::new(Counter::new())))
            .1
            .clone()
    }

    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut inner = self.locked();
        inner
            .gauges
            .entry(name)
            .or_insert_with(|| (help, Arc::new(Gauge::new())))
            .1
            .clone()
    }

    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let mut inner = self.locked();
        inner
            .histograms
            .entry(name)
            .or_insert_with(|| (help, Arc::new(Histogram::new(bounds))))
            .1
            .clone()
    }

    /// Render every registered instrument in Prometheus text exposition
    /// format (`text/plain; version=0.0.4`).
    pub fn render_prometheus(&self) -> String {
        let inner = self.locked();
        let mut out = String::new();
        for (name, (help, c)) in &inner.counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                c.get()
            ));
        }
        for (name, (help, g)) in &inner.gauges {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
                g.get()
            ));
        }
        for (name, (help, h)) in &inner.histograms {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, bound) in h.bounds.iter().enumerate() {
                cumulative += h.buckets[i].load(Ordering::Relaxed);
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {cumulative}\n",
                h.sum()
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Prometheus text-format checking
// ---------------------------------------------------------------------------

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// The metric family a sample belongs to: histogram series end in
/// `_bucket` / `_sum` / `_count`.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validate a Prometheus text exposition. Checks line shapes, metric
/// name syntax, numeric sample values, balanced label braces, and that
/// every sample's family was announced by a preceding `# TYPE` line.
/// Used by the `promcheck` binary in `crates/bench` and the serve
/// concurrency tests.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: bad metric name in HELP: {name:?}"));
                    }
                }
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {n}: bad metric name in TYPE: {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown type {kind:?}"));
                    }
                    typed.insert(name.to_string(), kind.to_string());
                }
                _ => return Err(format!("line {n}: unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: comments must start with '# '"));
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {n}: sample has no value: {line:?}")),
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {n}: bad metric name {name_part:?}"));
        }
        let value_part = if let Some(labels) = rest.strip_prefix('{') {
            let Some(close) = labels.find('}') else {
                return Err(format!("line {n}: unbalanced label braces"));
            };
            &labels[close + 1..]
        } else {
            rest
        };
        let mut fields = value_part.split_whitespace();
        let Some(value) = fields.next() else {
            return Err(format!("line {n}: sample has no value: {line:?}"));
        };
        let numeric = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
        if !numeric {
            return Err(format!("line {n}: non-numeric sample value {value:?}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {n}: bad timestamp {ts:?}"));
            }
        }
        let family = family_of(name_part);
        if !typed.contains_key(family) && !typed.contains_key(name_part) {
            return Err(format!(
                "line {n}: sample {name_part:?} has no preceding TYPE"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition contains no samples".to_string());
    }
    Ok(())
}

/// Extract `(name, value)` for every *plain* (label-free) sample —
/// enough to assert cross-scrape monotonicity of counters in tests.
pub fn parse_plain_samples(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() || line.contains('{') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(name), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(name.to_string(), v);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

/// One finished span: a labelled, timed region with a parent link and
/// integer attributes (rows, visited, reads, …).
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: u32,
    pub parent: Option<u32>,
    /// Plan-order index for spans created by parallel branches, so the
    /// rendered tree is deterministic regardless of completion order.
    pub seq: u32,
    pub label: String,
    pub start_us: u64,
    pub end_us: u64,
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// Collects the spans of one statement. `Sync`, so parallel set-op
/// branches can record into the same trace.
pub struct Tracer {
    epoch: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            epoch: Instant::now(),
            next_id: AtomicU32::new(0),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Consume the tracer and return the finished trace, spans in
    /// creation order.
    pub fn finish(self) -> QueryTrace {
        let mut spans = self.spans.into_inner().unwrap_or_else(|e| e.into_inner());
        spans.sort_by_key(|s| s.id);
        QueryTrace { spans }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// Where a new span attaches: a tracer (or not) and a parent span —
/// plus the request deadline, if any, which rides along so executors
/// can check it cooperatively at span boundaries. `Copy`, so it
/// threads through recursive executors for free.
#[derive(Clone, Copy)]
pub struct TraceCtx<'a> {
    tracer: Option<&'a Tracer>,
    parent: Option<u32>,
    deadline: Option<Instant>,
}

impl<'a> TraceCtx<'a> {
    /// The no-op context used by every untraced execution path.
    pub fn disabled() -> TraceCtx<'static> {
        TraceCtx {
            tracer: None,
            parent: None,
            deadline: None,
        }
    }

    pub fn root(tracer: &'a Tracer) -> TraceCtx<'a> {
        TraceCtx {
            tracer: Some(tracer),
            parent: None,
            deadline: None,
        }
    }

    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Attach a request deadline. Deadlines propagate to child spans'
    /// contexts, so one call at the root covers the whole execution.
    pub fn with_deadline(self, deadline: Option<Instant>) -> TraceCtx<'a> {
        TraceCtx { deadline, ..self }
    }

    /// True once the attached deadline (if any) has passed. Executors
    /// call this at span boundaries to cancel cooperatively.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Open a span; it records itself into the trace when dropped.
    pub fn span(&self, label: &str) -> SpanGuard<'a> {
        self.span_indexed(label, 0)
    }

    /// Open a span carrying an explicit plan-order index — used for
    /// parallel branches, whose creation order is nondeterministic.
    pub fn span_indexed(&self, label: &str, seq: u32) -> SpanGuard<'a> {
        match self.tracer {
            None => SpanGuard {
                tracer: None,
                id: 0,
                parent: None,
                seq: 0,
                label: String::new(),
                start_us: 0,
                attrs: Vec::new(),
                deadline: self.deadline,
            },
            Some(tracer) => SpanGuard {
                tracer: Some(tracer),
                id: tracer.next_id.fetch_add(1, Ordering::Relaxed),
                parent: self.parent,
                seq,
                label: label.to_string(),
                start_us: tracer.now_us(),
                attrs: Vec::new(),
                deadline: self.deadline,
            },
        }
    }
}

/// RAII handle for an open span. Dropping it stamps the end time and
/// pushes the record into the tracer.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    id: u32,
    parent: Option<u32>,
    seq: u32,
    label: String,
    start_us: u64,
    attrs: Vec<(&'static str, u64)>,
    deadline: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    /// The context for children of this span.
    pub fn ctx(&self) -> TraceCtx<'a> {
        TraceCtx {
            tracer: self.tracer,
            parent: self.tracer.map(|_| self.id),
            deadline: self.deadline,
        }
    }

    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.tracer.is_some() {
            self.attrs.push((key, value));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            let record = SpanRecord {
                id: self.id,
                parent: self.parent,
                seq: self.seq,
                label: std::mem::take(&mut self.label),
                start_us: self.start_us,
                end_us: tracer.now_us(),
                attrs: std::mem::take(&mut self.attrs),
            };
            tracer
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(record);
        }
    }
}

/// A finished per-statement trace: the span forest of one execution.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    pub spans: Vec<SpanRecord>,
}

impl QueryTrace {
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Wall time covered by the trace: first span start to last span
    /// end.
    pub fn total_us(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Children of each span in deterministic (plan) order: `seq`
    /// breaks the tie among parallel siblings, creation id otherwise.
    fn children(&self) -> BTreeMap<Option<u32>, Vec<usize>> {
        let mut map: BTreeMap<Option<u32>, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            map.entry(s.parent).or_default().push(i);
        }
        for kids in map.values_mut() {
            kids.sort_by_key(|&i| (self.spans[i].seq, self.spans[i].id));
        }
        map
    }

    /// Render the trace as an indented operator tree:
    ///
    /// ```text
    /// execute rows=5 visited=12 time_us=34
    ///   scan rows=5 visited=12 reads=7 time_us=30
    /// ```
    pub fn render_tree(&self) -> String {
        let map = self.children();
        let mut out = String::new();
        fn walk(
            trace: &QueryTrace,
            map: &BTreeMap<Option<u32>, Vec<usize>>,
            parent: Option<u32>,
            depth: usize,
            out: &mut String,
        ) {
            for &i in map.get(&parent).map(Vec::as_slice).unwrap_or(&[]) {
                let s = &trace.spans[i];
                out.push_str(&"  ".repeat(depth));
                out.push_str(&s.label);
                for (k, v) in &s.attrs {
                    out.push_str(&format!(" {k}={v}"));
                }
                out.push_str(&format!(" time_us={}\n", s.duration_us()));
                walk(trace, map, Some(s.id), depth + 1, out);
            }
        }
        walk(self, &map, None, 0, &mut out);
        out
    }

    /// The trace as a JSON array of span objects — the slow-query log
    /// payload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"label\":\"{}\",\"start_us\":{},\"end_us\":{}",
                s.id,
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                json_escape(&s.label),
                s.start_us,
                s.end_us,
            ));
            out.push_str(",\"attrs\":{");
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{v}", json_escape(k)));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

/// Minimal JSON string escaping for trace labels and statement text.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

/// Deep heap footprint of a value.
///
/// `heap_breakdown()` is the single source of truth: named components
/// whose byte counts **sum exactly** to `heap_bytes()` (the provided
/// method just sums them), so the `STATS` memory section, the
/// `lipstick_*_heap_bytes` gauges, and the shell's `\mem` command can
/// never disagree about the total. Counts are *capacity-based
/// estimates* of owned heap allocations (a `Vec<T>` contributes
/// `capacity * size_of::<T>()`), excluding `size_of::<Self>()` itself
/// and excluding allocator bookkeeping — comparable across runs, not a
/// malloc audit.
pub trait HeapSize {
    /// Named components summing to the heap total. Component names are
    /// stable identifiers (snake_case), rendered verbatim in `STATS`
    /// and logs.
    fn heap_breakdown(&self) -> Vec<(&'static str, usize)>;

    /// Total owned heap bytes — the sum of [`HeapSize::heap_breakdown`].
    fn heap_bytes(&self) -> usize {
        self.heap_breakdown().iter().map(|(_, b)| b).sum()
    }
}

/// Heap bytes owned by a `Vec`'s buffer, counting spare capacity (the
/// allocation is what the process actually holds, not just the
/// initialized prefix).
pub fn vec_alloc_bytes<T>(v: &std::vec::Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Render a byte count for humans: `912 B`, `31.4 KiB`, `29.8 MiB`.
pub fn format_bytes(bytes: usize) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KIB {
        format!("{bytes} B")
    } else if b < KIB * KIB {
        format!("{:.1} KiB", b / KIB)
    } else if b < KIB * KIB * KIB {
        format!("{:.1} MiB", b / (KIB * KIB))
    } else {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    }
}

/// FNV-1a 64-bit hash. Used as the result digest in the structured
/// query log so a replay can assert byte-identical results without
/// storing full payloads.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_and_render_are_consistent() {
        let h = Histogram::new(&[10, 100]);
        for v in [5, 9, 50, 500] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 564);
        let reg = registry();
        let shared = reg.histogram("lipstick_test_hist_us", "test histogram", &[10, 100]);
        shared.observe(5);
        shared.observe(500);
        let text = reg.render_prometheus();
        validate_prometheus_text(&text).expect("rendered exposition must validate");
        assert!(text.contains("lipstick_test_hist_us_bucket{le=\"+Inf\"}"));
        assert!(text.contains("lipstick_test_hist_us_count"));
    }

    #[test]
    fn registry_is_idempotent_by_name() {
        let a = registry().counter("lipstick_test_idem_total", "x");
        let b = registry().counter("lipstick_test_idem_total", "x");
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_prometheus_text("").is_err());
        assert!(validate_prometheus_text("no_type_line 3\n").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx{le=\"5\" 3\n").is_err());
        assert!(validate_prometheus_text("# TYPE 9bad counter\n9bad 3\n").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx 3\n").is_ok());
        assert!(validate_prometheus_text(
            "# TYPE x histogram\nx_bucket{le=\"+Inf\"} 3\nx_sum 1\nx_count 3\n"
        )
        .is_ok());
    }

    #[test]
    fn spans_nest_and_render_deterministically() {
        let tracer = Tracer::new();
        {
            let root = TraceCtx::root(&tracer);
            let mut execute = root.span("execute");
            execute.attr("rows", 5);
            {
                // Parallel siblings created out of order still render in
                // plan (seq) order.
                let _b1 = execute.ctx().span_indexed("branch 1", 1);
                let _b0 = execute.ctx().span_indexed("branch 0", 0);
            }
        }
        let trace = tracer.finish();
        let tree = trace.render_tree();
        let b0 = tree.find("branch 0").unwrap();
        let b1 = tree.find("branch 1").unwrap();
        assert!(b0 < b1, "siblings must render in seq order:\n{tree}");
        assert!(tree.starts_with("execute rows=5"), "root first:\n{tree}");
        let json = trace.to_json();
        assert!(json.contains("\"label\":\"execute\""));
        assert!(json.contains("\"rows\":5"));
    }

    #[test]
    fn heap_breakdown_is_the_source_of_truth() {
        struct Fake;
        impl HeapSize for Fake {
            fn heap_breakdown(&self) -> Vec<(&'static str, usize)> {
                vec![("a", 100), ("b", 28)]
            }
        }
        assert_eq!(Fake.heap_bytes(), 128);
        let v: Vec<u64> = Vec::with_capacity(10);
        assert_eq!(vec_alloc_bytes(&v), 80);
    }

    #[test]
    fn format_bytes_picks_sane_units() {
        assert_eq!(format_bytes(912), "912 B");
        assert_eq!(format_bytes(32_153), "31.4 KiB");
        assert_eq!(format_bytes(31_250_000), "29.8 MiB");
        assert!(format_bytes(3_000_000_000).ends_with(" GiB"));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        let ctx = TraceCtx::disabled();
        let mut g = ctx.span("ignored");
        g.attr("rows", 1);
        drop(g);
        assert!(!ctx.enabled());
    }
}
