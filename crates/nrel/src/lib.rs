//! # lipstick-nrel — nested relational data model
//!
//! The bag-semantics nested relational data model underlying Lipstick's
//! Pig Latin dialect (paper §2.1). A *relation* is an unordered bag of
//! tuples; tuple fields are atomic values, nested tuples, or nested bags.
//!
//! The crate provides:
//!
//! - [`Value`]: the runtime value tree (null, bool, int, float, string,
//!   chararray-free — strings are UTF-8 —, tuples, bags, maps);
//! - [`Tuple`] and [`Bag`]: the composite collection types;
//! - [`Schema`], [`DataType`], [`Field`]: nested relational schemas with
//!   optional field names, used for name resolution and validation;
//! - total ordering and hashing over all values (floats order by
//!   [`f64::total_cmp`]) so that values can key hash maps and B-trees;
//! - a small builder DSL ([`tuple!`], [`bag!`]) for tests and examples.
//!
//! The model intentionally supports *heterogeneous* bags at runtime (a bag
//! does not enforce its tuples' types); schemas describe the homogeneous
//! fragment used throughout the paper and are enforced only at module
//! boundaries by `lipstick-workflow`.

pub mod bag;
pub mod builder;
pub mod error;
pub mod schema;
pub mod sort;
pub mod value;

pub use bag::Bag;
pub use error::{NrelError, Result};
pub use schema::{DataType, Field, Schema};
pub use value::{Tuple, Value};
