//! Subgraph queries (paper §5.1).
//!
//! "A subgraph query takes a node id as input and returns a subgraph
//! that includes all ancestors and descendants of the node, along with
//! all siblings of its descendants." Siblings of a node d are the other
//! successors of d's predecessors (nodes sharing a parent with d) — they
//! expose the alternative/joint derivations that the node's descendants
//! participate in, which is what dependency analysis inspects.
//!
//! Besides the paper's all-depth query, this module exposes the
//! traversal machinery the ProQL planner composes: [`traverse`] is a
//! bounded-depth sweep with a collect-filter hook (so planners can push
//! predicates into the walk instead of post-filtering) that reports how
//! many nodes it visited — the planner's unit of work.

use std::collections::VecDeque;
use std::fmt;

use crate::graph::bitset::BitSet;
use crate::graph::node::{Node, NodeId};
use crate::graph::ProvGraph;

use super::error::QueryError;

/// Result of a subgraph query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphResult {
    /// All nodes of the subgraph (root, ancestors, descendants,
    /// siblings of descendants), ascending by id.
    pub nodes: Vec<NodeId>,
    /// Number of ancestors of the root (root excluded).
    pub ancestor_count: usize,
    /// Number of descendants of the root (root excluded).
    pub descendant_count: usize,
}

impl SubgraphResult {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// Render the induced subgraph as Graphviz DOT (see
    /// [`crate::graph::dot::to_dot_induced`]).
    pub fn to_dot(&self, graph: &ProvGraph, name: &str) -> String {
        crate::graph::dot::to_dot_induced(graph, name, &self.nodes)
    }
}

impl fmt::Display for SubgraphResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subgraph of {} nodes ({} ancestors, {} descendants)",
            self.nodes.len(),
            self.ancestor_count,
            self.descendant_count
        )?;
        for chunk in self.nodes.chunks(16) {
            write!(f, "\n  ")?;
            for (i, id) in chunk.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{id}")?;
            }
        }
        Ok(())
    }
}

/// Which way a [`traverse`] walks the provenance DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow ingredient edges backwards (towards sources).
    Ancestors,
    /// Follow dependent edges forwards (towards sinks).
    Descendants,
}

/// Work done by one traversal — the planner's cost feedback signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Visible nodes dequeued during the sweep (root included).
    pub visited: usize,
}

/// Result of a bounded-depth ancestor/descendant query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedResult {
    pub root: NodeId,
    pub direction: Direction,
    /// Depth bound the query ran with (`None` = unbounded).
    pub depth: Option<u32>,
    /// Collected nodes, ascending by id; the root is excluded.
    pub nodes: Vec<NodeId>,
    pub stats: TraversalStats,
}

impl BoundedResult {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// Render the result (plus its root) as Graphviz DOT.
    pub fn to_dot(&self, graph: &ProvGraph, name: &str) -> String {
        let mut nodes = self.nodes.clone();
        if let Err(pos) = nodes.binary_search(&self.root) {
            nodes.insert(pos, self.root);
        }
        crate::graph::dot::to_dot_induced(graph, name, &nodes)
    }
}

impl fmt::Display for BoundedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.direction {
            Direction::Ancestors => "ancestors",
            Direction::Descendants => "descendants",
        };
        match self.depth {
            Some(d) => write!(f, "{} {what} of {} within depth {d}", self.len(), self.root)?,
            None => write!(f, "{} {what} of {}", self.len(), self.root)?,
        }
        for chunk in self.nodes.chunks(16) {
            write!(f, "\n  ")?;
            for (i, id) in chunk.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{id}")?;
            }
        }
        Ok(())
    }
}

/// Breadth-first sweep from `root` over visible nodes, at most `depth`
/// edges deep (`None` = unbounded). Every visible node reached is
/// *visited* (and counted in the stats); only those passing `collect`
/// are returned. The root itself is visited but never collected.
///
/// This is the traversal primitive planners build on: pushing a filter
/// into `collect` avoids materialising the unfiltered set, and the
/// visited count exposes the true work done for cost comparisons.
pub fn traverse(
    graph: &ProvGraph,
    root: NodeId,
    direction: Direction,
    depth: Option<u32>,
    mut collect: impl FnMut(NodeId, &Node) -> bool,
) -> Result<(Vec<NodeId>, TraversalStats), QueryError> {
    if !graph.node(root).is_visible() {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut seen = BitSet::new(graph.len());
    seen.insert(root.index());
    let mut out = Vec::new();
    let mut stats = TraversalStats { visited: 1 };
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    queue.push_back((root, 0));
    while let Some((v, d)) = queue.pop_front() {
        if let Some(limit) = depth {
            if d >= limit {
                continue;
            }
        }
        let node = graph.node(v);
        let next = match direction {
            Direction::Ancestors => node.preds(),
            Direction::Descendants => node.succs(),
        };
        for &n in next {
            let nn = graph.node(n);
            if nn.is_visible() && seen.insert(n.index()) {
                stats.visited += 1;
                if collect(n, nn) {
                    out.push(n);
                }
                queue.push_back((n, d + 1));
            }
        }
    }
    out.sort();
    Ok((out, stats))
}

/// Ancestors of `root` within `depth` edges (`None` = all).
pub fn ancestors_bounded(
    graph: &ProvGraph,
    root: NodeId,
    depth: Option<u32>,
) -> Result<BoundedResult, QueryError> {
    let (nodes, stats) = traverse(graph, root, Direction::Ancestors, depth, |_, _| true)?;
    Ok(BoundedResult {
        root,
        direction: Direction::Ancestors,
        depth,
        nodes,
        stats,
    })
}

/// Descendants of `root` within `depth` edges (`None` = all).
pub fn descendants_bounded(
    graph: &ProvGraph,
    root: NodeId,
    depth: Option<u32>,
) -> Result<BoundedResult, QueryError> {
    let (nodes, stats) = traverse(graph, root, Direction::Descendants, depth, |_, _| true)?;
    Ok(BoundedResult {
        root,
        direction: Direction::Descendants,
        depth,
        nodes,
        stats,
    })
}

/// Breadth-first sweep over visible nodes in one direction.
fn sweep(
    graph: &ProvGraph,
    root: NodeId,
    visited: &mut BitSet,
    next: impl Fn(&ProvGraph, NodeId) -> Vec<NodeId>,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut local = BitSet::new(graph.len());
    let mut queue = VecDeque::new();
    queue.push_back(root);
    local.insert(root.index());
    while let Some(v) = queue.pop_front() {
        for n in next(graph, v) {
            if graph.node(n).is_visible() && local.insert(n.index()) {
                out.push(n);
                queue.push_back(n);
            }
        }
    }
    for id in &out {
        visited.insert(id.index());
    }
    out
}

/// Run a subgraph query from `root`.
pub fn subgraph(graph: &ProvGraph, root: NodeId) -> Result<SubgraphResult, QueryError> {
    if !graph.node(root).is_visible() {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut members = BitSet::new(graph.len());
    members.insert(root.index());

    let ancestors = sweep(graph, root, &mut members, |g, v| g.node(v).preds().to_vec());
    let descendants = sweep(graph, root, &mut members, |g, v| g.node(v).succs().to_vec());

    // Siblings of descendants: other successors of each descendant's
    // predecessors. The root's own siblings are not included (the paper
    // scopes siblings to descendants).
    for d in &descendants {
        for &p in graph.node(*d).preds() {
            if !graph.node(p).is_visible() {
                continue;
            }
            for &sib in graph.node(p).succs() {
                if graph.node(sib).is_visible() {
                    members.insert(sib.index());
                }
            }
        }
    }

    Ok(SubgraphResult {
        nodes: members.iter().map(|i| NodeId(i as u32)).collect(),
        ancestor_count: ancestors.len(),
        descendant_count: descendants.len(),
    })
}

/// The ancestor set only (used by the §5.5 fine-grainedness analysis:
/// which base/state tuples does an output depend on?).
pub fn ancestors(graph: &ProvGraph, root: NodeId) -> Result<Vec<NodeId>, QueryError> {
    if !graph.node(root).is_visible() {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut scratch = BitSet::new(graph.len());
    let mut a = sweep(graph, root, &mut scratch, |g, v| g.node(v).preds().to_vec());
    a.sort();
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond with a sibling branch:
    ///
    /// ```text
    ///   a   b     c
    ///    \ /      |
    ///     t       p   (p is a sibling-input relative of nothing here)
    ///    / \
    ///   u   w     (u, w descendants of t; c→p separate component)
    /// ```
    fn diamond() -> (ProvGraph, [NodeId; 7]) {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let c = g.add_base("c");
        let t = g.add_times(&[a, b]);
        let u = g.add_plus(&[t]);
        let w = g.add_plus(&[t]);
        let p = g.add_plus(&[c]);
        (g, [a, b, c, t, u, w, p])
    }

    #[test]
    fn subgraph_of_mid_node() {
        let (g, [a, b, c, t, u, w, p]) = diamond();
        let r = subgraph(&g, t).unwrap();
        assert!(r.contains(a) && r.contains(b), "ancestors");
        assert!(r.contains(u) && r.contains(w), "descendants");
        assert!(!r.contains(c) && !r.contains(p), "unrelated component");
        assert_eq!(r.ancestor_count, 2);
        assert_eq!(r.descendant_count, 2);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn siblings_of_descendants_are_included() {
        // a → t ← b;  b → x.  Subgraph of a: descendant {t}; x shares
        // parent b with descendant t, so x is included. b itself is
        // neither ancestor, descendant, nor sibling — it stays out (the
        // paper's definition covers siblings only, not co-parents).
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        let x = g.add_plus(&[b]);
        let r = subgraph(&g, a).unwrap();
        assert!(r.contains(t));
        assert!(r.contains(x), "x shares parent b with descendant t");
        assert!(!r.contains(b), "co-parents are not part of the subgraph");
    }

    #[test]
    fn subgraph_of_source_and_sink() {
        let (g, [a, _, _, t, u, _, _]) = diamond();
        let from_a = subgraph(&g, a).unwrap();
        assert_eq!(from_a.ancestor_count, 0);
        assert!(from_a.contains(t) && from_a.contains(u));
        let from_u = subgraph(&g, u).unwrap();
        assert_eq!(from_u.descendant_count, 0);
        assert!(from_u.contains(a));
    }

    #[test]
    fn ancestors_only() {
        let (g, [a, b, _, t, u, _, _]) = diamond();
        let anc = ancestors(&g, u).unwrap();
        assert_eq!(anc, vec![a, b, t]);
    }

    #[test]
    fn hidden_nodes_excluded() {
        let (mut g, [a, _, _, t, u, _, _]) = diamond();
        g.node_mut(t).zoom_hidden = true;
        let r = subgraph(&g, a).unwrap();
        assert!(!r.contains(t));
        assert!(!r.contains(u), "reachable only through hidden node");
    }

    #[test]
    fn query_on_hidden_root_is_error() {
        let (mut g, [a, ..]) = diamond();
        g.node_mut(a).deleted = true;
        assert!(matches!(
            subgraph(&g, a),
            Err(QueryError::NodeNotVisible(_))
        ));
    }

    /// A four-deep chain a → b → c → d for depth-bound tests.
    fn chain() -> (ProvGraph, [NodeId; 4]) {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_plus(&[a]);
        let c = g.add_plus(&[b]);
        let d = g.add_plus(&[c]);
        (g, [a, b, c, d])
    }

    #[test]
    fn bounded_descendants_respect_depth() {
        let (g, [a, b, c, d]) = chain();
        let r1 = descendants_bounded(&g, a, Some(1)).unwrap();
        assert_eq!(r1.nodes, vec![b]);
        let r2 = descendants_bounded(&g, a, Some(2)).unwrap();
        assert_eq!(r2.nodes, vec![b, c]);
        let all = descendants_bounded(&g, a, None).unwrap();
        assert_eq!(all.nodes, vec![b, c, d]);
    }

    #[test]
    fn bounded_ancestors_respect_depth() {
        let (g, [a, b, c, d]) = chain();
        let r1 = ancestors_bounded(&g, d, Some(1)).unwrap();
        assert_eq!(r1.nodes, vec![c]);
        let all = ancestors_bounded(&g, d, None).unwrap();
        assert_eq!(all.nodes, vec![a, b, c]);
        assert_eq!(all.stats.visited, 4, "root plus three ancestors");
    }

    #[test]
    fn bounded_matches_unbounded_ancestors() {
        let (g, [_, _, _, _, u, _, _]) = {
            let (g, ids) = diamond();
            (g, ids)
        };
        let anc = ancestors(&g, u).unwrap();
        let bounded = ancestors_bounded(&g, u, None).unwrap();
        assert_eq!(anc, bounded.nodes);
    }

    #[test]
    fn collect_filter_prunes_output_not_traversal() {
        let (g, [a, b, c, d]) = chain();
        let (collected, stats) =
            traverse(&g, a, Direction::Descendants, None, |id, _| id == c).unwrap();
        assert_eq!(collected, vec![c]);
        // b and d were still visited: the filter affects the output set.
        assert_eq!(stats.visited, 4);
        let _ = (b, d);
    }

    #[test]
    fn depth_zero_visits_only_root() {
        let (g, [a, ..]) = chain();
        let r = descendants_bounded(&g, a, Some(0)).unwrap();
        assert!(r.nodes.is_empty());
        assert_eq!(r.stats.visited, 1);
    }

    #[test]
    fn bounded_traversal_skips_hidden() {
        let (mut g, [a, b, c, _]) = chain();
        g.node_mut(b).zoom_hidden = true;
        let r = descendants_bounded(&g, a, None).unwrap();
        assert!(!r.contains(b));
        assert!(!r.contains(c), "only path runs through hidden b");
    }

    #[test]
    fn display_and_dot_render_results() {
        let (g, [a, _, _, t, u, w, _]) = diamond();
        let r = subgraph(&g, t).unwrap();
        let text = r.to_string();
        assert!(text.contains("5 nodes"), "got: {text}");
        let dot = r.to_dot(&g, "sub");
        assert!(dot.starts_with("digraph \"sub\""));
        // Induced render keeps in-set edges, drops out-of-set nodes.
        assert!(dot.contains(&format!("n{} -> n{}", a.0, t.0)));
        assert!(dot.contains(&format!("n{}", u.0)) && dot.contains(&format!("n{}", w.0)));

        let b = descendants_bounded(&g, a, Some(1)).unwrap();
        assert!(b.to_string().contains("within depth 1"));
        let bdot = b.to_dot(&g, "b");
        assert!(
            bdot.contains(&format!("n{} -> n{}", a.0, t.0)),
            "root included"
        );
    }
}
