//! Serve ProQL over the network.
//!
//! With no graph argument it executes the Car-dealerships workflow and
//! serves the captured provenance; `--open PATH` serves a v2 log paged
//! (queries fault in only the records they touch), `--load PATH`
//! decodes a v1/v2 log fully first, `--append PATH` serves the log as
//! an append session (mutations commit durable tail records instead of
//! promoting; pair with `--compact-every N` to auto-`COMPACT` the tail
//! after every N successful mutations).
//!
//! ```sh
//! cargo run --release --example proql_serve -- --open prov.lpstk --addr 127.0.0.1:7433
//! # then, from another terminal:
//! printf "MATCH base-nodes;\n" | nc 127.0.0.1 7433
//! curl -s -X POST --data "MATCH base-nodes" http://127.0.0.1:7433/query
//! curl -s "http://127.0.0.1:7433/explain?q=MATCH+base-nodes"
//! ```
//!
//! `--query-log PATH` captures every executed statement as structured
//! JSONL (servable live via `GET /log?n=`, replayable with
//! `bench_replay`).
//!
//! Overload guards (all off by default): `--request-deadline-us N`
//! cancels reads cooperatively after N µs, `--write-queue-limit N`
//! sheds mutations with `BUSY retry_after_ms=` once N are queued, and
//! `--idle-timeout-us N` drops connections that stall mid-request.
//!
//! `--self-test` writes the demo graph to a temp v2 log, serves it
//! **paged** on an ephemeral port, drives a scripted client through
//! both protocols, and exits non-zero on any mismatch — the CI smoke
//! test.

use lipstick::core::GraphTracker;
use lipstick::proql::Session;
use lipstick::serve::client::{http_get_explain, http_post_query};
use lipstick::serve::{Client, QueryLogConfig, Server, ServerConfig};
use lipstick::workflowgen::dealers::{self, DealersParams};

struct Args {
    session: Session,
    addr: String,
    workers: usize,
    query_log: Option<QueryLogConfig>,
    self_test: bool,
    compact_every: u64,
    request_deadline_us: u64,
    write_queue_limit: usize,
    idle_timeout_us: u64,
}

fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut session = None;
    let mut addr = "127.0.0.1:7433".to_string();
    let mut workers = 4;
    let mut query_log = None;
    let mut self_test = false;
    let mut compact_every = 0u64;
    let mut request_deadline_us = 0u64;
    let mut write_queue_limit = 0usize;
    let mut idle_timeout_us = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--request-deadline-us" => {
                request_deadline_us = args
                    .next()
                    .ok_or("--request-deadline-us requires microseconds")?
                    .parse()
                    .map_err(|_| "--request-deadline-us requires a number")?;
            }
            "--write-queue-limit" => {
                write_queue_limit = args
                    .next()
                    .ok_or("--write-queue-limit requires a count")?
                    .parse()
                    .map_err(|_| "--write-queue-limit requires a number")?;
            }
            "--idle-timeout-us" => {
                idle_timeout_us = args
                    .next()
                    .ok_or("--idle-timeout-us requires microseconds")?
                    .parse()
                    .map_err(|_| "--idle-timeout-us requires a number")?;
            }
            "--open" => {
                let path = args.next().ok_or("--open requires a path")?;
                eprintln!("opening provenance log {path} lazily (v2 footer index)");
                session = Some(Session::open(path)?);
            }
            "--load" => {
                let path = args.next().ok_or("--load requires a path")?;
                eprintln!("loading provenance log {path}");
                session = Some(Session::load(path)?);
            }
            "--append" => {
                let path = args.next().ok_or("--append requires a path")?;
                eprintln!("opening provenance log {path} for appending (WAL tail segment)");
                session = Some(Session::open_append(path)?);
            }
            "--compact-every" => {
                compact_every = args
                    .next()
                    .ok_or("--compact-every requires a count")?
                    .parse()
                    .map_err(|_| "--compact-every requires a number")?;
            }
            "--addr" => addr = args.next().ok_or("--addr requires HOST:PORT")?,
            "--workers" => {
                workers = args
                    .next()
                    .ok_or("--workers requires a count")?
                    .parse()
                    .map_err(|_| "--workers requires a number")?;
            }
            "--query-log" => {
                let path = args.next().ok_or("--query-log requires a path")?;
                eprintln!("capturing the structured query log to {path} (JSONL)");
                query_log = Some(QueryLogConfig::new(path));
            }
            "--self-test" => {
                self_test = true;
                addr = "127.0.0.1:0".to_string();
            }
            other => return Err(format!("unknown argument '{other}'").into()),
        }
    }
    let session = match session {
        Some(s) => s,
        None => {
            eprintln!("running the Car-dealerships workflow (24 cars, 3 executions)…");
            let params = DealersParams {
                num_cars: 24,
                num_exec: 3,
                seed: 7,
            };
            let mut tracker = GraphTracker::new();
            dealers::run_declining(&params, &mut tracker)?;
            let graph = tracker.finish();
            if self_test {
                // The smoke test exercises the paged path end to end:
                // demo graph → temp v2 log → Session::open.
                let path = std::env::temp_dir().join("lipstick-serve-selftest.lpstk");
                lipstick::storage::write_graph_v2(&graph, &path)?;
                let session = Session::open(&path)?;
                assert!(session.is_paged());
                session
            } else {
                Session::new(graph)
            }
        }
    };
    if self_test && query_log.is_none() {
        // The smoke test covers the capture path too: a query log in
        // the temp dir, checked and removed by `self_test`.
        query_log = Some(QueryLogConfig::new(std::env::temp_dir().join(format!(
            "lipstick-serve-selftest-{}.jsonl",
            std::process::id()
        ))));
    }
    Ok(Args {
        session,
        addr,
        workers,
        query_log,
        self_test,
        compact_every,
        request_deadline_us,
        write_queue_limit,
        idle_timeout_us,
    })
}

fn self_test(
    handle: &lipstick::serve::ServerHandle,
    qlog_path: Option<&std::path::Path>,
) -> Result<(), Box<dyn std::error::Error>> {
    let addr = handle.addr();
    let mut client = Client::connect(addr)?;

    let cold = client.query("MATCH base-nodes")?;
    if !cold.is_ok() || cold.cache_hit() {
        return Err(format!("cold query misbehaved: {cold:?}").into());
    }
    let warm = client.query("match BASE-NODES ;")?;
    if !warm.cache_hit() || warm.body() != cold.body() {
        return Err(format!("normalized re-query must hit the cache: {warm:?}").into());
    }
    for stmt in [
        "STATS",
        "EXPLAIN MATCH m-nodes",
        "MATCH m-nodes WHERE execution < 1",
    ] {
        let reply = client.query(stmt)?;
        if !reply.is_ok() {
            return Err(format!("{stmt} failed: {reply:?}").into());
        }
    }
    let analyze = client.query("EXPLAIN ANALYZE MATCH base-nodes")?;
    if !analyze.is_ok() || !analyze.body().contains("actuals:") {
        return Err(format!("EXPLAIN ANALYZE misbehaved: {analyze:?}").into());
    }

    let (status, body) = http_post_query(addr, "MATCH base-nodes")?;
    if status != "HTTP/1.1 200 OK" || !body.contains(r#""cache_hit":true"#) {
        return Err(format!("HTTP query misbehaved: {status} {body}").into());
    }
    if !body.contains(r#""time_us":"#) || !body.contains(r#""reads":"#) {
        return Err(format!("HTTP query must carry timing fields: {body}").into());
    }
    let (status, body) = http_get_explain(addr, "MATCH+base-nodes")?;
    if status != "HTTP/1.1 200 OK" || !body.contains(r#""plan":"#) {
        return Err(format!("HTTP explain misbehaved: {status} {body}").into());
    }

    // The observability surface: /metrics must be a valid Prometheus
    // exposition naming the serve series, /slow must answer JSON.
    let (status, metrics) = lipstick::serve::client::http_get(addr, "/metrics")?;
    if status != "HTTP/1.1 200 OK" {
        return Err(format!("GET /metrics: {status}").into());
    }
    lipstick::core::obs::validate_prometheus_text(&metrics)
        .map_err(|e| format!("/metrics invalid: {e}"))?;
    if !metrics.contains("lipstick_serve_queries_total") {
        return Err(format!("/metrics must name the serve series:\n{metrics}").into());
    }
    let (status, slow) = lipstick::serve::client::http_get(addr, "/slow?n=5")?;
    if status != "HTTP/1.1 200 OK" || !slow.contains(r#""ok":true"#) {
        return Err(format!("GET /slow misbehaved: {status} {slow}").into());
    }

    // Memory accounting: the heap-byte gauges must be present and, for
    // a paged backend, non-zero — /metrics refreshes them at scrape
    // time from the live session.
    for gauge in [
        "lipstick_storage_paged_log_heap_bytes",
        "lipstick_serve_cache_heap_bytes",
    ] {
        if !metrics.contains(gauge) {
            return Err(format!("/metrics must export {gauge}:\n{metrics}").into());
        }
    }
    let stats = client.query("STATS")?;
    if !stats.body().contains("memory store.") || !stats.body().contains("memory total=") {
        return Err(format!("STATS must report the memory breakdown: {stats:?}").into());
    }

    // The structured query log: every statement so far must be an
    // event, and the newest must be servable over GET /log.
    if let Some(path) = qlog_path {
        let events = handle.query_log_events();
        if events != handle.queries() {
            return Err(format!(
                "query log recorded {events} event(s) for {} statement(s)",
                handle.queries()
            )
            .into());
        }
        let (status, log) = lipstick::serve::client::http_get(addr, "/log?n=3")?;
        if status != "HTTP/1.1 200 OK" || !log.contains(r#""result_fnv":"#) {
            return Err(format!("GET /log misbehaved: {status} {log}").into());
        }
        let parsed = lipstick::serve::qlog::read_log(path);
        if parsed.len() as u64 != events {
            return Err(format!(
                "capture file parsed back {} of {events} event(s)",
                parsed.len()
            )
            .into());
        }
        std::fs::remove_file(path).ok();
    }

    // Robustness surface: the overload series must already render (at
    // zero is fine) so dashboards see them before the first incident.
    for series in [
        "lipstick_serve_shed_total",
        "lipstick_serve_deadline_exceeded_total",
        "lipstick_storage_io_errors_total",
    ] {
        if !metrics.contains(series) {
            return Err(format!("/metrics must export {series}:\n{metrics}").into());
        }
    }

    self_test_shutdown_durability()?;

    let (hits, misses) = handle.cache_stats();
    eprintln!(
        "self-test ok: {} queries, {hits} cache hits, {misses} misses, {} log event(s)",
        handle.queries(),
        handle.query_log_events()
    );
    Ok(())
}

/// Graceful-shutdown durability: an **append** server acknowledges
/// writes, shuts down gracefully mid-session, and a fresh session on
/// the same files must recover every acked write. This is the restart
/// a deploy performs, exercised end to end.
fn self_test_shutdown_durability() -> Result<(), Box<dyn std::error::Error>> {
    use lipstick::core::NodeKind;
    use lipstick::serve::client::RetryPolicy;

    let params = DealersParams {
        num_cars: 24,
        num_exec: 3,
        seed: 7,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker)?;
    let graph = tracker.finish();
    let victims: Vec<_> = graph
        .iter_visible()
        .filter(|(_, node)| matches!(node.kind, NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .take(2)
        .collect();
    if victims.len() < 2 {
        return Err("demo graph has too few base tuples".into());
    }
    let path = std::env::temp_dir().join(format!(
        "lipstick-serve-selftest-drain-{}.lpstk",
        std::process::id()
    ));
    lipstick::storage::write_graph_v2(&graph, &path)?;
    let mut tail = path.clone().into_os_string();
    tail.push(".tail");
    std::fs::remove_file(&tail).ok();

    // All three guards armed, none restrictive enough to interfere.
    let handle = Server::new(
        Session::open_append(&path)?,
        ServerConfig {
            workers: 2,
            write_queue_limit: 64,
            request_deadline_us: 10_000_000,
            idle_timeout_us: 10_000_000,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")?;
    let mut client = Client::connect(handle.addr())?;
    for victim in &victims {
        let reply = client.query_with_retry(
            &format!("DELETE #{} PROPAGATE", victim.0),
            &RetryPolicy::default(),
        )?;
        if !reply.is_ok() {
            return Err(format!("append delete not acked: {reply:?}").into());
        }
    }
    // Shut down with the connection still open: the drain must deliver
    // in-flight replies, half-close the socket, and sync the tail.
    handle.shutdown();
    let registry = lipstick::core::obs::registry().render_prometheus();
    if !registry.contains("lipstick_serve_shutdown_drain_us") {
        return Err("shutdown did not set the drain-time gauge".into());
    }

    // Restart on the same files: every acked write must have survived.
    let mut reopened = Session::open_append(&path)?;
    for victim in &victims {
        match reopened.run(&format!("WHY #{};", victim.0)) {
            Err(e) if e.to_string() == format!("unknown node reference #{}", victim.0) => {}
            other => {
                return Err(format!(
                    "acked delete of #{} lost across graceful shutdown: {other:?}",
                    victim.0
                )
                .into())
            }
        }
    }
    drop(reopened);
    std::fs::remove_file(&tail).ok();
    std::fs::remove_file(&path).ok();
    eprintln!("self-test: graceful shutdown drained, synced, and lost no acked write");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let backend = if args.session.is_append() {
        "append"
    } else if args.session.is_paged() {
        "paged"
    } else {
        "resident"
    };
    let qlog_path = args.query_log.as_ref().map(|c| c.path.clone());
    let handle = Server::new(
        args.session,
        ServerConfig {
            workers: args.workers,
            query_log: args.query_log,
            compact_every: args.compact_every,
            request_deadline_us: args.request_deadline_us,
            write_queue_limit: args.write_queue_limit,
            idle_timeout_us: args.idle_timeout_us,
            ..ServerConfig::default()
        },
    )
    .serve(&args.addr)?;
    eprintln!(
        "lipstick-serve listening on {} ({backend} backend, {} workers)",
        handle.addr(),
        args.workers
    );
    if args.self_test {
        let result = self_test(&handle, qlog_path.as_deref());
        handle.shutdown();
        return result;
    }
    eprintln!("line protocol: one statement per line; HTTP: POST /query, GET /explain?q=…");
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
