//! Query-log rotation properties: whatever sequence of events is
//! appended and however often the file rotates underneath them, reading
//! the log back must yield every event exactly once, in order.

use std::path::PathBuf;

use lipstick_serve::qlog::{read_log, QueryEvent, QueryLog, QueryLogConfig};
use proptest::prelude::*;

/// Deterministic xorshift so every case reproduces from its seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn scratch_path(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "lipstick-qlog-prop-{}-{tag:016x}.jsonl",
        std::process::id()
    ))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    for generation in 0..512u64 {
        let mut archived = path.as_os_str().to_os_string();
        archived.push(format!(".{generation}"));
        let _ = std::fs::remove_file(PathBuf::from(archived));
    }
}

proptest! {
    #[test]
    fn rotation_loses_and_duplicates_nothing(seed: u64) {
        let mut rng = Rng(seed);
        let events = 20 + rng.below(60);
        // Tiny rotation thresholds force rotation every few appends
        // (an event line is ~150 bytes); `keep` is sized so nothing is
        // pruned during the run — pruning *is* lossy, by design.
        let max_bytes = 128 + rng.below(1024) as u64;
        let path = scratch_path(seed);
        cleanup(&path);
        let log = QueryLog::open(QueryLogConfig {
            path: path.clone(),
            max_bytes,
            keep: 512,
        });
        for i in 0..events {
            log.append(QueryEvent {
                seq: u64::MAX, // overwritten by the log
                ts_us: rng.next() % 1_000_000,
                client: rng.next() % 8,
                stmt: format!("MATCH base-nodes LIMIT {i}"),
                key: format!("MATCH base-nodes LIMIT {i}"),
                outcome: if rng.below(10) == 0 { "err" } else { "ok" }.into(),
                cache_hit: rng.below(2) == 0,
                time_us: rng.next() % 10_000,
                reads: rng.next() % 100,
                epoch: rng.next() % 4,
                result_fnv: rng.next(),
            });
        }
        let rotations = log.generation();
        prop_assert!(rotations > 0, "thresholds must force at least one rotation");
        drop(log);

        let recovered = read_log(&path);
        cleanup(&path);
        prop_assert_eq!(
            recovered.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..events as u64).collect::<Vec<_>>(),
            "every appended event must read back exactly once, in order \
             ({} rotation(s), max_bytes {})",
            rotations,
            max_bytes
        );
        // Spot-check a payload survived the file round trip intact.
        let probe = &recovered[recovered.len() / 2];
        prop_assert_eq!(&probe.stmt, &format!("MATCH base-nodes LIMIT {}", probe.seq));
    }
}

/// Reopening an existing log appends after the previous contents
/// rather than truncating them.
#[test]
fn reopen_appends_instead_of_truncating() {
    let path = scratch_path(0xab5e_0000_0001);
    cleanup(&path);
    let config = QueryLogConfig {
        path: path.clone(),
        max_bytes: u64::MAX,
        keep: 4,
    };
    let sample = |seq| QueryEvent {
        seq,
        ts_us: 0,
        client: 0,
        stmt: "STATS".into(),
        key: "STATS".into(),
        outcome: "ok".into(),
        cache_hit: false,
        time_us: 1,
        reads: 0,
        epoch: 0,
        result_fnv: 1,
    };
    let first = QueryLog::open(config.clone());
    first.append(sample(0));
    drop(first);
    let second = QueryLog::open(config);
    second.append(sample(0));
    drop(second);
    let recovered = read_log(&path);
    cleanup(&path);
    // Sequence numbers restart per process (they are per-log-instance),
    // but both events must be present.
    assert_eq!(recovered.len(), 2, "reopen must not truncate");
}
