//! Equi-JOIN with `·` provenance.
//!
//! "For each tuple t in the result of JOIN A BY f1, B BY f2, we create a
//! p-node labeled · with incoming edges from v_t′, v_t″ where t′ from A
//! and t″ from B join to produce t" (§3.2).

use std::collections::HashMap;
use std::sync::Arc;

use lipstick_core::Tracker;
use lipstick_nrel::{Schema, Value};

use crate::error::Result;
use crate::expr::CExpr;

use super::context::{ARelation, ATuple, Ann};
use super::group::key_tuple;

/// Hash equi-join. Null keys never match (Pig/SQL semantics).
pub fn eval_join<T: Tracker>(
    left: &ARelation<T::Ref>,
    left_keys: &[CExpr],
    right: &ARelation<T::Ref>,
    right_keys: &[CExpr],
    out_schema: Arc<Schema>,
    tracker: &mut T,
) -> Result<ARelation<T::Ref>> {
    // Build side: the smaller input.
    let mut table: HashMap<Value, Vec<usize>> = HashMap::with_capacity(left.rows.len());
    for (idx, row) in left.rows.iter().enumerate() {
        let key = key_tuple(left_keys, &row.tuple)?;
        if key_has_null(&key) {
            continue;
        }
        table.entry(key).or_default().push(idx);
    }

    let left_arity = left.schema.arity() as u16;
    let mut out = ARelation::empty(out_schema);
    for rrow in &right.rows {
        let key = key_tuple(right_keys, &rrow.tuple)?;
        if key_has_null(&key) {
            continue;
        }
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for &li in matches {
            let lrow = &left.rows[li];
            let tuple = lrow.tuple.concat(&rrow.tuple);
            let prov = tracker.times(&[lrow.ann.prov, rrow.ann.prov]);
            let mut vrefs = Vec::new();
            let mut members = Vec::new();
            if T::TRACKING {
                vrefs.extend(lrow.ann.vrefs.iter().copied());
                vrefs.extend(rrow.ann.vrefs.iter().map(|(i, r)| (i + left_arity, *r)));
                members.extend(lrow.members.iter().cloned());
                members.extend(
                    rrow.members
                        .iter()
                        .map(|(i, m)| (i + left_arity, m.clone())),
                );
            }
            out.rows.push(ATuple {
                tuple,
                ann: Ann { prov, vrefs },
                members,
            });
        }
    }
    Ok(out)
}

fn key_has_null(key: &Value) -> bool {
    match key {
        Value::Null => true,
        Value::Tuple(t) => t.fields().iter().any(Value::is_null),
        _ => false,
    }
}
