//! Provenance graph nodes.

use std::fmt;

use lipstick_nrel::Value;

use crate::agg::AggOp;
use crate::semiring::Token;

/// Index of a node in the graph arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Identifier of one module invocation (a module executes once per
/// workflow execution phase; the same module may be invoked many times
/// over a sequence of executions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InvocationId(pub u32);

impl InvocationId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InvocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}", self.0)
    }
}

/// Reserved stash index marking a *retired* zoom composite: a
/// tombstoned `Zoomed` node whose stash has been taken back by ZoomIn.
/// ZoomOut never allocates this index (it errors first), so
/// `Zoomed { stash: RETIRED_STASH }` unambiguously means "retired" —
/// both in memory and in the on-disk codec's sentinel tag.
pub const RETIRED_STASH: u32 = u32::MAX;

/// What a node *is* — the legend of the paper's Figure 2(a).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Workflow input tuple (type "i" at workflow level; `N00`/`I1` in
    /// the paper). A p-node source labelled with its token.
    WorkflowInput { token: Token },
    /// Module invocation node (type "m").
    Invocation,
    /// Module input node (type "i"): `·` of the tuple's provenance and
    /// the invocation node.
    ModuleInput,
    /// Module output node (type "o").
    ModuleOutput,
    /// Module state node (type "s"): `·` of the state tuple's provenance
    /// and the invocation node.
    StateUnit,
    /// Base tuple p-node: an input/state tuple with no recorded
    /// derivation, labelled by its token (`C2`, `C3`, …).
    BaseTuple { token: Token },
    /// Semiring `+` (alternative derivation: projection, union).
    Plus,
    /// Semiring `·` (joint derivation: join, flatten).
    Times,
    /// δ duplicate elimination (GROUP / COGROUP / DISTINCT). Incoming
    /// edges come directly from the group members (the paper's shorthand
    /// for δ over their sum).
    Delta,
    /// Aggregation operation v-node (labelled `Count`, `Sum`, …).
    AggResult { op: AggOp },
    /// `⊗` tensor v-node pairing a value with a provenance annotation.
    Tensor,
    /// Constant / attribute value v-node.
    Const { value: Value },
    /// Black-box (UDF) invocation; `is_value` distinguishes v-node
    /// results (e.g. `calcBid`'s amount) from p-node results.
    BlackBox { name: String, is_value: bool },
    /// Zoomed-out module invocation: the composite node created by
    /// ZoomOut, standing for the module's hidden internals. `stash`
    /// indexes the graph's stash table for ZoomIn restoration.
    Zoomed { stash: u32 },
}

impl NodeKind {
    /// v-nodes carry values; p-nodes carry provenance (paper §3.1).
    pub fn is_value_node(&self) -> bool {
        matches!(
            self,
            NodeKind::AggResult { .. }
                | NodeKind::Tensor
                | NodeKind::Const { .. }
                | NodeKind::BlackBox { is_value: true, .. }
        )
    }

    /// Nodes whose derivation is *joint* (·/⊗-like): deletion of any
    /// ingredient deletes the node (Def. 4.2 rule 2). Black boxes are
    /// joint because each output (coarsely) depends on all inputs; the
    /// zoomed composite node likewise models the coarse-grained
    /// "output depends on all inputs" reading.
    pub fn is_joint(&self) -> bool {
        matches!(
            self,
            NodeKind::Times
                | NodeKind::Tensor
                | NodeKind::ModuleInput
                | NodeKind::ModuleOutput
                | NodeKind::StateUnit
                | NodeKind::BlackBox { .. }
                | NodeKind::Zoomed { .. }
        )
    }

    /// Stable textual name of the kind, used by statistics breakdowns
    /// and ProQL `kind = '…'` predicates.
    pub fn name(&self) -> &'static str {
        match self {
            NodeKind::WorkflowInput { .. } => "workflow_input",
            NodeKind::Invocation => "invocation",
            NodeKind::ModuleInput => "module_input",
            NodeKind::ModuleOutput => "module_output",
            NodeKind::StateUnit => "state",
            NodeKind::BaseTuple { .. } => "base_tuple",
            NodeKind::Plus => "plus",
            NodeKind::Times => "times",
            NodeKind::Delta => "delta",
            NodeKind::AggResult { .. } => "agg",
            NodeKind::Tensor => "tensor",
            NodeKind::Const { .. } => "const",
            NodeKind::BlackBox { .. } => "blackbox",
            NodeKind::Zoomed { .. } => "zoomed",
        }
    }

    /// Short label for display / DOT export.
    pub fn label(&self) -> String {
        match self {
            NodeKind::WorkflowInput { token } => format!("I:{token}"),
            NodeKind::Invocation => "m".into(),
            NodeKind::ModuleInput => "i:·".into(),
            NodeKind::ModuleOutput => "o:·".into(),
            NodeKind::StateUnit => "s:·".into(),
            NodeKind::BaseTuple { token } => token.to_string(),
            NodeKind::Plus => "+".into(),
            NodeKind::Times => "·".into(),
            NodeKind::Delta => "δ".into(),
            NodeKind::AggResult { op } => op.name().into(),
            NodeKind::Tensor => "⊗".into(),
            NodeKind::Const { value } => value.to_string(),
            NodeKind::BlackBox { name, .. } => name.clone(),
            NodeKind::Zoomed { .. } => "zoom".into(),
        }
    }
}

/// Which part of the workflow owns a node — used by ZoomOut to find a
/// module invocation's intermediate computation in O(1) per node (the
/// tag provably coincides with the paper's Definition 4.1 reachability
/// characterization; see [`crate::graph::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Workflow-level input; survives every zoom.
    WorkflowInput,
    /// The `m` node of an invocation.
    Invocation(InvocationId),
    /// Module input node of an invocation.
    ModuleInput(InvocationId),
    /// Module output node of an invocation.
    ModuleOutput(InvocationId),
    /// State node of an invocation.
    State(InvocationId),
    /// Intermediate computation of an invocation (Def. 4.1).
    Intermediate(InvocationId),
    /// Zoom composite created by ZoomOut.
    Zoom(InvocationId),
    /// Not owned by any invocation (standalone Pig queries, initial
    /// state base tuples).
    Free,
}

impl Role {
    /// Stable textual name of the role, used by ProQL `role = '…'`
    /// predicates.
    pub fn name(&self) -> &'static str {
        match self {
            Role::WorkflowInput => "workflow_input",
            Role::Invocation(_) => "invocation",
            Role::ModuleInput(_) => "module_input",
            Role::ModuleOutput(_) => "module_output",
            Role::State(_) => "state",
            Role::Intermediate(_) => "intermediate",
            Role::Zoom(_) => "zoom",
            Role::Free => "free",
        }
    }

    /// The invocation this role is attached to, if any.
    pub fn invocation(&self) -> Option<InvocationId> {
        match self {
            Role::Invocation(i)
            | Role::ModuleInput(i)
            | Role::ModuleOutput(i)
            | Role::State(i)
            | Role::Intermediate(i)
            | Role::Zoom(i) => Some(*i),
            Role::WorkflowInput | Role::Free => None,
        }
    }
}

/// A provenance graph node. Edges are stored adjacency-list style in
/// both directions: `preds` are the node's ingredients (edges point
/// ingredient → result, as in the paper's figures), `succs` its
/// dependents.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub role: Role,
    pub(crate) preds: Vec<NodeId>,
    pub(crate) succs: Vec<NodeId>,
    /// Tombstone set by deletion propagation or ZoomIn cleanup.
    pub(crate) deleted: bool,
    /// Hidden by ZoomOut (restored by ZoomIn).
    pub(crate) zoom_hidden: bool,
}

impl Node {
    pub(crate) fn new(kind: NodeKind, role: Role) -> Self {
        Node {
            kind,
            role,
            preds: Vec::new(),
            succs: Vec::new(),
            deleted: false,
            zoom_hidden: false,
        }
    }

    /// Is the node part of the currently visible graph?
    pub fn is_visible(&self) -> bool {
        !self.deleted && !self.zoom_hidden
    }

    /// Tombstoned by deletion propagation (or ZoomIn cleanup)?
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    /// Hidden by an active ZoomOut?
    pub fn is_zoom_hidden(&self) -> bool {
        self.zoom_hidden
    }

    /// Restore flags when loading a persisted graph.
    pub fn set_deleted(&mut self, deleted: bool) {
        self.deleted = deleted;
    }

    /// Ingredient nodes (may include hidden/deleted ids; filter against
    /// visibility when traversing).
    pub fn preds(&self) -> &[NodeId] {
        &self.preds
    }

    /// Dependent nodes.
    pub fn succs(&self) -> &[NodeId] {
        &self.succs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_kinds_match_paper_rule() {
        assert!(NodeKind::Times.is_joint());
        assert!(NodeKind::Tensor.is_joint());
        assert!(NodeKind::ModuleInput.is_joint());
        assert!(!NodeKind::Plus.is_joint());
        assert!(!NodeKind::Delta.is_joint());
        assert!(!NodeKind::AggResult { op: AggOp::Count }.is_joint());
    }

    #[test]
    fn value_node_classification() {
        assert!(NodeKind::Tensor.is_value_node());
        assert!(NodeKind::Const {
            value: Value::Int(1)
        }
        .is_value_node());
        assert!(NodeKind::BlackBox {
            name: "f".into(),
            is_value: true
        }
        .is_value_node());
        assert!(!NodeKind::BlackBox {
            name: "f".into(),
            is_value: false
        }
        .is_value_node());
        assert!(!NodeKind::Plus.is_value_node());
    }

    #[test]
    fn role_invocation_accessor() {
        assert_eq!(
            Role::Intermediate(InvocationId(3)).invocation(),
            Some(InvocationId(3))
        );
        assert_eq!(Role::Free.invocation(), None);
    }
}
