//! An interactive ProQL shell over a WorkflowGen provenance graph.
//!
//! With no arguments it executes the Car-dealerships workflow and
//! queries the captured provenance; `--load PATH` instead loads a
//! provenance log written by `lipstick_storage::write_graph`.
//!
//! Statements end with `;`. Meta commands: `\dot` prints the last
//! node-set result as Graphviz, `\help` lists statement forms,
//! `\quit` exits.
//!
//! ```sh
//! echo "STATS; MATCH m-nodes WHERE module = 'Mdealer1';" | \
//!     cargo run --example proql_shell
//! ```

use std::io::{BufRead, Write};

use lipstick::core::GraphTracker;
use lipstick::proql::{QueryOutput, Session};
use lipstick::workflowgen::dealers::{self, DealersParams};

const HELP: &str = "\
ProQL statement forms:
  SUBGRAPH OF #42                          ancestors + descendants + siblings
  WHY 'C2'                                 symbolic provenance expression
  DEPENDS(#42, 'C2')                       dependency test
  DELETE 'C2' PROPAGATE                    deletion propagation (mutates!)
  ZOOM OUT TO Mdealer1, Magg  /  ZOOM IN   coarsen / restore module views
  EVAL #42 IN counting|boolean|tropical|lineage|why
  MATCH m-nodes WHERE module = 'Mdealer1'  node selection (m/i/o/s/base/p/v/nodes)
  ANCESTORS OF #42 DEPTH 3                 bounded traversal (also DESCENDANTS)
  MATCH base-nodes INTERSECT ANCESTORS OF #42   set ops (also UNION)
  BUILD INDEX / DROP INDEX                 reachability closure on/off
  EXPLAIN <statement>                      show the physical plan
  STATS                                    graph statistics
Meta: \\dot (last node set as Graphviz), \\help, \\quit";

fn build_session() -> Result<Session, Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--load") => {
            let path = args.next().ok_or("--load requires a path")?;
            eprintln!("loading provenance log {path}");
            Ok(Session::load(path)?)
        }
        Some("--open") => {
            let path = args.next().ok_or("--open requires a path")?;
            eprintln!("opening provenance log {path} lazily (v2 footer index)");
            Ok(Session::open(path)?)
        }
        Some(other) => {
            Err(format!("unknown argument '{other}' (try --load PATH or --open PATH)").into())
        }
        None => {
            eprintln!("running the Car-dealerships workflow (24 cars, 3 executions)…");
            let params = DealersParams {
                num_cars: 24,
                num_exec: 3,
                seed: 7,
            };
            let mut tracker = GraphTracker::new();
            dealers::run_declining(&params, &mut tracker)?;
            Ok(Session::new(tracker.finish()))
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = build_session()?;
    if session.is_paged() {
        println!("proql shell — paged session; records fault in per query, \\help for help");
    } else {
        println!(
            "proql shell — graph has {} visible nodes; end statements with ';', \\help for help",
            session.graph().visible_count()
        );
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut last_nodes: Option<lipstick::proql::NodeSetResult> = None;
    print!("proql> ");
    std::io::stdout().flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        match trimmed {
            "\\quit" => break,
            "\\help" => {
                println!("{HELP}");
                print!("proql> ");
                std::io::stdout().flush()?;
                continue;
            }
            "\\dot" => {
                match (&last_nodes, session.resident_graph()) {
                    (Some(ns), Some(graph)) => println!("{}", ns.to_dot(graph, "proql")),
                    (Some(_), None) => {
                        println!("(paged session — DOT rendering needs the resident graph)")
                    }
                    (None, _) => println!("no node-set result yet"),
                }
                print!("proql> ");
                std::io::stdout().flush()?;
                continue;
            }
            _ => {}
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            continue; // statement continues on the next line
        }
        let script = std::mem::take(&mut buffer);
        match session.run(&script) {
            Ok(outputs) => {
                for out in outputs {
                    match out {
                        QueryOutput::Nodes(ns) => {
                            match session.resident_graph() {
                                Some(graph) => println!("{}", ns.render(graph, 20)),
                                // Paged sessions print ids only; labels
                                // would fault every listed record.
                                None => println!("{ns}"),
                            }
                            last_nodes = Some(ns);
                        }
                        other => println!("{other}"),
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
        print!("proql> ");
        std::io::stdout().flush()?;
    }
    Ok(())
}
