//! Figure 5(c): parallelism. Executes the dealers workflow on the
//! thread-pool executor with a varying number of "reducers". The shape
//! to reproduce: improvement saturates around 2-4 reducers (the four
//! dealer modules are the parallel portion) with comparable curves
//! with and without provenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lipstick_bench::run_dealers_parallel;
use lipstick_workflowgen::DealersParams;

fn fig5c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_parallel");
    group.sample_size(10);
    let params = DealersParams {
        num_cars: 1200,
        num_exec: 3,
        seed: 1_000_003,
    };
    for reducers in [1usize, 2, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::new("no_prov", reducers), &reducers, |b, &r| {
            b.iter(|| run_dealers_parallel(&params, r, false))
        });
        group.bench_with_input(BenchmarkId::new("prov", reducers), &reducers, |b, &r| {
            b.iter(|| run_dealers_parallel(&params, r, true))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5c);
criterion_main!(benches);
