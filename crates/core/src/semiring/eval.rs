//! Evaluating provenance expressions under a semiring valuation.
//!
//! The framework's central property: provenance-polynomial evaluation
//! commutes with semiring homomorphisms. Given a valuation
//! `X → K`, [`eval_expr`] is the unique homomorphism `N[X] → K` extending
//! it (with δ mapped to `K::delta`).

use std::collections::HashMap;

use super::expr::{ProvExpr, Token};
use super::polynomial::Polynomial;
use super::Semiring;

/// A token valuation into a semiring.
pub struct Valuation<'a, K: Semiring> {
    map: HashMap<&'a str, K>,
    /// Value for tokens absent from the map.
    default: K,
}

impl<'a, K: Semiring> Valuation<'a, K> {
    /// Valuation with explicit default for unmapped tokens.
    pub fn with_default(default: K) -> Self {
        Valuation {
            map: HashMap::new(),
            default,
        }
    }

    /// Valuation defaulting to `K::one()` (untracked tuples are present).
    pub fn ones() -> Self {
        Self::with_default(K::one())
    }

    /// Bind a token.
    pub fn set(mut self, token: &'a str, value: K) -> Self {
        self.map.insert(token, value);
        self
    }

    /// Look up a token.
    pub fn get(&self, token: &Token) -> K {
        self.map
            .get(token.as_str())
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }
}

/// Evaluate a symbolic expression under a valuation.
pub fn eval_expr<K: Semiring>(e: &ProvExpr, v: &Valuation<'_, K>) -> K {
    match e {
        ProvExpr::Zero => K::zero(),
        ProvExpr::One => K::one(),
        ProvExpr::Tok(t) => v.get(t),
        ProvExpr::Sum(parts) => parts
            .iter()
            .fold(K::zero(), |acc, p| acc.plus(&eval_expr(p, v))),
        ProvExpr::Prod(parts) => parts
            .iter()
            .fold(K::one(), |acc, p| acc.times(&eval_expr(p, v))),
        ProvExpr::Delta(inner) => eval_expr(inner, v).delta(),
    }
}

/// Evaluate a canonical polynomial under a valuation.
pub fn eval_poly<K: Semiring>(p: &Polynomial, v: &Valuation<'_, K>) -> K {
    let mut acc = K::zero();
    for (monomial, coeff) in p.terms() {
        let mut term = K::one();
        for (tok, exp) in monomial.factors() {
            let kv = v.get(tok);
            for _ in 0..exp {
                term = term.times(&kv);
            }
        }
        // Multiply by the natural coefficient via repeated addition
        // (coefficients are small in practice; this stays exact for any
        // semiring without requiring a scalar action).
        let mut with_coeff = K::zero();
        for _ in 0..*coeff {
            with_coeff = with_coeff.plus(&term);
        }
        acc = acc.plus(&with_coeff);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::boolean::Bools;
    use crate::semiring::natural::Natural;
    use crate::semiring::tropical::Tropical;
    use proptest::prelude::*;

    fn sample_expr() -> ProvExpr {
        // (a + b)·c + δ(a + a)
        ProvExpr::sum(vec![
            ProvExpr::prod(vec![
                ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]),
                ProvExpr::tok("c"),
            ]),
            ProvExpr::delta(ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("a")])),
        ])
    }

    #[test]
    fn counting_interpretation() {
        let v = Valuation::<Natural>::with_default(Natural(0))
            .set("a", Natural(2))
            .set("b", Natural(1))
            .set("c", Natural(3));
        // (2+1)*3 + δ(2+2)=1 → 10
        assert_eq!(eval_expr(&sample_expr(), &v), Natural(10));
    }

    #[test]
    fn boolean_deletion_interpretation() {
        // Delete c and a: (a+b)·c dies, δ(a+a) dies → false
        let v = Valuation::<Bools>::with_default(Bools(true))
            .set("c", Bools(false))
            .set("a", Bools(false));
        assert_eq!(eval_expr(&sample_expr(), &v), Bools(false));
        // Delete only c: δ(a+a) still derivable → true
        let v = Valuation::<Bools>::with_default(Bools(true)).set("c", Bools(false));
        assert_eq!(eval_expr(&sample_expr(), &v), Bools(true));
    }

    #[test]
    fn tropical_cheapest_derivation() {
        let e = ProvExpr::sum(vec![
            ProvExpr::prod(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]),
            ProvExpr::tok("c"),
        ]);
        let v = Valuation::<Tropical>::with_default(Tropical(0.0))
            .set("a", Tropical(2.0))
            .set("b", Tropical(3.0))
            .set("c", Tropical(10.0));
        // min(2+3, 10) = 5
        assert_eq!(eval_expr(&e, &v), Tropical(5.0));
    }

    #[test]
    fn poly_eval_agrees_with_expr_eval_on_delta_free() {
        let e = ProvExpr::prod(vec![
            ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]),
            ProvExpr::tok("a"),
        ]);
        let p = Polynomial::from_expr(&e).unwrap();
        let v = Valuation::<Natural>::with_default(Natural(0))
            .set("a", Natural(3))
            .set("b", Natural(5));
        assert_eq!(eval_expr(&e, &v), eval_poly(&p, &v));
    }

    /// Strategy for random δ-free expressions over tokens {a, b, c}.
    fn arb_expr() -> impl Strategy<Value = ProvExpr> {
        let leaf = prop_oneof![
            Just(ProvExpr::Zero),
            Just(ProvExpr::One),
            Just(ProvExpr::tok("a")),
            Just(ProvExpr::tok("b")),
            Just(ProvExpr::tok("c")),
        ];
        leaf.prop_recursive(4, 32, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(ProvExpr::sum),
                prop::collection::vec(inner, 0..4).prop_map(ProvExpr::prod),
            ]
        })
    }

    proptest! {
        /// Homomorphism property: expanding to a polynomial and then
        /// evaluating equals evaluating the tree directly.
        #[test]
        fn expansion_commutes_with_evaluation(
            e in arb_expr(),
            va in 0u64..5, vb in 0u64..5, vc in 0u64..5,
        ) {
            let p = Polynomial::from_expr(&e).expect("delta-free");
            let v = Valuation::<Natural>::with_default(Natural(0))
                .set("a", Natural(va))
                .set("b", Natural(vb))
                .set("c", Natural(vc));
            prop_assert_eq!(eval_expr(&e, &v), eval_poly(&p, &v));
        }

        /// Deleting a token algebraically (substitute 0) equals the
        /// polynomial-level `delete_token`.
        #[test]
        fn delete_token_is_zero_substitution(e in arb_expr(), vb in 0u64..5, vc in 0u64..5) {
            let p = Polynomial::from_expr(&e).expect("delta-free");
            let deleted = p.delete_token(&Token::new("a"));
            let v_zero_a = Valuation::<Natural>::with_default(Natural(0))
                .set("a", Natural(0)).set("b", Natural(vb)).set("c", Natural(vc));
            let v_rest = Valuation::<Natural>::with_default(Natural(0))
                .set("a", Natural(1)).set("b", Natural(vb)).set("c", Natural(vc));
            prop_assert_eq!(eval_poly(&p, &v_zero_a), eval_poly(&deleted, &v_rest));
        }
    }
}
