//! Test support: a deterministic generator (and shrinker) of random,
//! well-formed, **read-only** ProQL statements over a given graph's
//! vocabulary.
//!
//! Lives in the library (not `#[cfg(test)]`) so integration tests — in
//! particular the resident/paged/server differential harness in
//! `tests/differential.rs` — and downstream crates can drive it. The
//! generator only produces statements the parser accepts and the
//! canonical [`Display`](crate::ast::Statement) round-trips, which is
//! itself property-tested in `tests/integration.rs`.

use lipstick_core::{NodeKind, ProvGraph};

use crate::ast::{
    Aggregate, CmpOp, Comparison, Field, Lit, NodeClass, NodeRef, OrderBy, Predicate, Query,
    SemiringName, SetExpr, SetTerm, Shaping, SortKey, Statement, WalkDir,
};

/// Deterministic splitmix64 generator — self-contained so the library
/// does not depend on any proptest machinery.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n` > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() as usize) % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// What a graph offers the generator: its visible node ids, base
/// tokens, and module names.
#[derive(Debug, Clone)]
pub struct Vocab {
    pub node_ids: Vec<u32>,
    pub tokens: Vec<String>,
    pub modules: Vec<String>,
}

/// Every kind name a node can have (for `kind = …` comparisons).
const KIND_NAMES: &[&str] = &[
    "base_tuple",
    "workflow_input",
    "plus",
    "times",
    "delta",
    "invocation",
    "module_input",
    "module_output",
    "state",
];

impl Vocab {
    pub fn from_graph(graph: &ProvGraph) -> Vocab {
        let mut node_ids = Vec::new();
        let mut tokens = Vec::new();
        for (id, node) in graph.iter_visible() {
            node_ids.push(id.0);
            match &node.kind {
                NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token } => {
                    tokens.push(token.as_str().to_string());
                }
                _ => {}
            }
        }
        let mut modules: Vec<String> = graph
            .invocations()
            .iter()
            .map(|info| info.module.clone())
            .collect();
        modules.sort();
        modules.dedup();
        Vocab {
            node_ids,
            tokens,
            modules,
        }
    }
}

/// One random **mutating** statement: deletion propagation, zooms (out
/// and back in), and `BUILD INDEX`. Interleaved between read-only
/// statements by the differential harness so resident, paged, and
/// server backends are compared *under incremental index maintenance*,
/// not just on read-only workloads. Some references dangle and some
/// zooms target already-zoomed (or never-zoomed) modules on purpose:
/// failed mutations must also fail identically everywhere.
///
/// `DROP INDEX` is deliberately absent: on a never-promoted paged
/// session it answers with a paged-specific message by design, which is
/// a sanctioned backend difference the harness would flag.
pub fn mutation(v: &Vocab, rng: &mut Rng) -> Statement {
    match rng.below(100) {
        0..=39 => Statement::DeletePropagate(node_ref(v, rng)),
        40..=59 if !v.modules.is_empty() => Statement::ZoomOut(vec![rng.pick(&v.modules).clone()]),
        60..=79 if !v.modules.is_empty() => Statement::ZoomIn(if rng.chance(50) {
            None
        } else {
            Some(vec![rng.pick(&v.modules).clone()])
        }),
        _ => Statement::BuildIndex,
    }
}

/// A deterministic mutation script of `len` statements — the shared
/// workload hook the fault-injection harness replays at every injected
/// failure point (same seed → same script, so op-by-op enumeration
/// stays reproducible). Unlike [`mutation`], every statement is
/// *well-formed against the vocabulary* in isolation; whether it
/// succeeds still depends on session state (a `ZOOM IN` of a module
/// that is not zoomed out fails cleanly), which is exactly the mix of
/// acked and erroring mutations the harness wants.
pub fn mutation_script(v: &Vocab, rng: &mut Rng, len: usize) -> Vec<Statement> {
    (0..len).map(|_| mutation(v, rng)).collect()
}

/// One random read-only statement: mostly shaped node-set queries,
/// with `WHY`/`DEPENDS`/`EVAL` mixed in. A few percent of node
/// references are deliberately dangling so the error paths are
/// differentially tested too.
pub fn statement(v: &Vocab, rng: &mut Rng) -> Statement {
    match rng.below(100) {
        0..=69 => Statement::Query(query(v, rng)),
        70..=79 => Statement::Why(node_ref(v, rng)),
        80..=89 => Statement::Depends(node_ref(v, rng), node_ref(v, rng)),
        _ => Statement::Eval(
            node_ref(v, rng),
            *rng.pick(&[
                SemiringName::Counting,
                SemiringName::Boolean,
                SemiringName::Tropical,
                SemiringName::Lineage,
                SemiringName::Why,
            ]),
        ),
    }
}

fn query(v: &Vocab, rng: &mut Rng) -> Query {
    let expr = set_expr(v, rng, 2);
    let shaping = if rng.chance(15) {
        Shaping {
            agg: Some(if rng.chance(50) {
                Aggregate::CountStar
            } else {
                Aggregate::CountDistinct(field(rng))
            }),
            ..Shaping::default()
        }
    } else {
        let group_by = rng.chance(30).then(|| field(rng));
        let order_by = if rng.chance(40) {
            let key = match group_by {
                // A grouped table orders by its own columns only.
                Some(g) => {
                    if rng.chance(60) {
                        SortKey::Count
                    } else {
                        SortKey::Field(g)
                    }
                }
                None => {
                    if rng.chance(30) {
                        SortKey::Id
                    } else {
                        SortKey::Field(field(rng))
                    }
                }
            };
            Some(OrderBy {
                key,
                desc: rng.chance(50),
            })
        } else {
            None
        };
        Shaping {
            agg: None,
            group_by,
            order_by,
            limit: rng.chance(40).then(|| rng.below(13) as u64), // 0 included
        }
    };
    Query { expr, shaping }
}

fn set_expr(v: &Vocab, rng: &mut Rng, depth: usize) -> SetExpr {
    if depth > 0 && rng.chance(25) {
        let lhs = set_expr(v, rng, depth - 1);
        let rhs = SetExpr::Term(set_term(v, rng, depth - 1));
        if rng.chance(50) {
            SetExpr::Union(Box::new(lhs), Box::new(rhs))
        } else {
            SetExpr::Intersect(Box::new(lhs), Box::new(rhs))
        }
    } else {
        SetExpr::Term(set_term(v, rng, depth))
    }
}

fn set_term(v: &Vocab, rng: &mut Rng, depth: usize) -> SetTerm {
    match rng.below(100) {
        0..=54 => SetTerm::Match {
            class: *rng.pick(&[
                NodeClass::All,
                NodeClass::Invocation,
                NodeClass::ModuleInput,
                NodeClass::ModuleOutput,
                NodeClass::Base,
                NodeClass::PNodes,
                NodeClass::VNodes,
            ]),
            filter: predicate(v, rng),
        },
        55..=84 => SetTerm::Walk {
            dir: if rng.chance(50) {
                WalkDir::Ancestors
            } else {
                WalkDir::Descendants
            },
            root: node_ref(v, rng),
            depth: rng.chance(50).then(|| rng.below(5) as u32),
            filter: predicate(v, rng),
        },
        85..=94 => SetTerm::Subgraph(node_ref(v, rng)),
        _ if depth > 0 => SetTerm::Paren(Box::new(set_expr(v, rng, depth - 1))),
        _ => SetTerm::Subgraph(node_ref(v, rng)),
    }
}

fn field(rng: &mut Rng) -> Field {
    *rng.pick(&[
        Field::Module,
        Field::Kind,
        Field::Role,
        Field::Execution,
        Field::Token,
    ])
}

fn predicate(v: &Vocab, rng: &mut Rng) -> Predicate {
    let n = match rng.below(100) {
        0..=39 => 0,
        40..=79 => 1,
        _ => 2,
    };
    Predicate {
        conjuncts: (0..n).map(|_| comparison(v, rng)).collect(),
    }
}

fn comparison(v: &Vocab, rng: &mut Rng) -> Comparison {
    let field = field(rng);
    let like = rng.chance(30);
    let op = if like {
        if rng.chance(75) {
            CmpOp::Like
        } else {
            CmpOp::NotLike
        }
    } else {
        *rng.pick(&[
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ])
    };
    let value = if like {
        Lit::Str(pattern(v, rng, field))
    } else {
        literal(v, rng, field)
    };
    Comparison { field, op, value }
}

/// A `%`/`_` pattern derived from a real value of the field (so some
/// patterns match) or junk (so some don't).
fn pattern(v: &Vocab, rng: &mut Rng, field: Field) -> String {
    let source = match field {
        Field::Module if !v.modules.is_empty() => rng.pick(&v.modules).clone(),
        Field::Token if !v.tokens.is_empty() => rng.pick(&v.tokens).clone(),
        Field::Kind => (*rng.pick(KIND_NAMES)).to_string(),
        _ => "nothing".to_string(),
    };
    let chars: Vec<char> = source.chars().collect();
    match rng.below(4) {
        0 => {
            // Prefix pattern — the planner's narrowing opportunity.
            let keep = rng.below(chars.len() + 1);
            let prefix: String = chars[..keep].iter().collect();
            format!("{prefix}%")
        }
        1 => {
            let keep = rng.below(chars.len() + 1);
            let suffix: String = chars[chars.len() - keep..].iter().collect();
            format!("%{suffix}")
        }
        2 if !chars.is_empty() => {
            // Replace one character with `_`.
            let at = rng.below(chars.len());
            chars
                .iter()
                .enumerate()
                .map(|(i, c)| if i == at { '_' } else { *c })
                .collect()
        }
        _ => source,
    }
}

fn literal(v: &Vocab, rng: &mut Rng, field: Field) -> Lit {
    // Occasionally a type-mismatched or junk literal, to cover the
    // `=`-fails / `!=`-holds semantics.
    if rng.chance(10) {
        return if rng.chance(50) {
            Lit::Int(rng.below(5) as u64)
        } else {
            Lit::Str("no-such-value".into())
        };
    }
    match field {
        Field::Module if !v.modules.is_empty() => Lit::Str(rng.pick(&v.modules).clone()),
        Field::Token if !v.tokens.is_empty() => Lit::Str(rng.pick(&v.tokens).clone()),
        Field::Kind => Lit::Str((*rng.pick(KIND_NAMES)).to_string()),
        Field::Role => Lit::Str(
            (*rng.pick(&[
                "free",
                "intermediate",
                "state",
                "invocation",
                "module_input",
                "module_output",
            ]))
            .to_string(),
        ),
        Field::Execution => Lit::Int(rng.below(4) as u64),
        _ => Lit::Int(rng.below(4) as u64),
    }
}

fn node_ref(v: &Vocab, rng: &mut Rng) -> NodeRef {
    if rng.chance(5) {
        // Dangling on purpose: both backends must report the same
        // resolution error.
        return NodeRef::Id(1_000_000 + rng.below(1000) as u32);
    }
    if !v.tokens.is_empty() && rng.chance(25) {
        NodeRef::Token(rng.pick(&v.tokens).clone())
    } else if v.node_ids.is_empty() {
        NodeRef::Id(0)
    } else {
        NodeRef::Id(*rng.pick(&v.node_ids))
    }
}

/// Structurally simpler variants of a statement, for shrinking a
/// failing differential case: each candidate removes one clause,
/// conjunct, operand, or wrapper. The harness keeps re-shrinking while
/// any candidate still fails, ending at a minimal failing statement.
pub fn shrink(stmt: &Statement) -> Vec<Statement> {
    match stmt {
        Statement::Query(q) => {
            let mut out = Vec::new();
            let s = &q.shaping;
            if s.limit.is_some() {
                let mut t = q.clone();
                t.shaping.limit = None;
                out.push(Statement::Query(t));
            }
            if s.order_by.is_some() {
                let mut t = q.clone();
                t.shaping.order_by = None;
                out.push(Statement::Query(t));
            }
            if s.group_by.is_some() {
                let mut t = q.clone();
                t.shaping.group_by = None;
                t.shaping.order_by = match t.shaping.order_by {
                    // An order key naming the dropped group column
                    // would no longer validate; drop it too.
                    Some(OrderBy {
                        key: SortKey::Count | SortKey::Field(_),
                        ..
                    })
                    | None => None,
                    keep => keep,
                };
                out.push(Statement::Query(t));
            }
            if s.agg.is_some() {
                let mut t = q.clone();
                t.shaping.agg = None;
                out.push(Statement::Query(t));
            }
            for expr in shrink_set(&q.expr) {
                out.push(Statement::Query(Query {
                    expr,
                    shaping: q.shaping.clone(),
                }));
            }
            out
        }
        _ => Vec::new(),
    }
}

fn shrink_set(e: &SetExpr) -> Vec<SetExpr> {
    match e {
        SetExpr::Term(t) => shrink_term(t).into_iter().map(SetExpr::Term).collect(),
        SetExpr::Union(a, b) | SetExpr::Intersect(a, b) => {
            let mut out = vec![(**a).clone(), (**b).clone()];
            for sa in shrink_set(a) {
                out.push(match e {
                    SetExpr::Union(_, _) => SetExpr::Union(Box::new(sa), b.clone()),
                    _ => SetExpr::Intersect(Box::new(sa), b.clone()),
                });
            }
            for sb in shrink_set(b) {
                out.push(match e {
                    SetExpr::Union(_, _) => SetExpr::Union(a.clone(), Box::new(sb)),
                    _ => SetExpr::Intersect(a.clone(), Box::new(sb)),
                });
            }
            out
        }
    }
}

fn shrink_term(t: &SetTerm) -> Vec<SetTerm> {
    match t {
        SetTerm::Match { class, filter } => shrink_predicate(filter)
            .into_iter()
            .map(|f| SetTerm::Match {
                class: *class,
                filter: f,
            })
            .collect(),
        SetTerm::Walk {
            dir,
            root,
            depth,
            filter,
        } => {
            let mut out = Vec::new();
            if depth.is_some() {
                out.push(SetTerm::Walk {
                    dir: *dir,
                    root: root.clone(),
                    depth: None,
                    filter: filter.clone(),
                });
            }
            for f in shrink_predicate(filter) {
                out.push(SetTerm::Walk {
                    dir: *dir,
                    root: root.clone(),
                    depth: *depth,
                    filter: f,
                });
            }
            out
        }
        SetTerm::Subgraph(_) => Vec::new(),
        SetTerm::Paren(inner) => {
            let mut out = Vec::new();
            if let SetExpr::Term(t) = &**inner {
                out.push(t.clone());
            }
            out.extend(
                shrink_set(inner)
                    .into_iter()
                    .map(|e| SetTerm::Paren(Box::new(e))),
            );
            out
        }
    }
}

fn shrink_predicate(p: &Predicate) -> Vec<Predicate> {
    (0..p.conjuncts.len())
        .map(|drop| Predicate {
            conjuncts: p
                .conjuncts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, c)| c.clone())
                .collect(),
        })
        .collect()
}
