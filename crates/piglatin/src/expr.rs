//! Compiled scalar expressions and their (provenance-free) evaluation.
//!
//! Field references are resolved to positions at plan time; evaluation
//! is pure over a single tuple. Aggregates and UDF calls are *not*
//! scalar expressions — they are handled at the `GENERATE`-item level by
//! the evaluator because they create provenance structure.

use std::cmp::Ordering;

use lipstick_nrel::{Bag, Tuple, Value};

use crate::ast::{BinOp, UnaryOp};
use crate::error::{PigError, Result};

/// A compiled (position-resolved) scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Literal constant.
    Lit(Value),
    /// Field of the current tuple, by resolved position.
    Field(usize),
    /// Project one attribute across a nested bag (`Bids.Price`):
    /// evaluates to a bag of 1-tuples. Valid as an aggregate argument.
    BagProject { bag: usize, attr: usize },
    /// Unary operator.
    Unary { op: UnaryOp, inner: Box<CExpr> },
    /// Binary operator.
    Binary {
        op: BinOp,
        left: Box<CExpr>,
        right: Box<CExpr>,
    },
    /// `IS [NOT] NULL`.
    IsNull { inner: Box<CExpr>, negated: bool },
}

impl CExpr {
    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            CExpr::Lit(v) => Ok(v.clone()),
            CExpr::Field(i) => Ok(tuple.get(*i)?.clone()),
            CExpr::BagProject { bag, attr } => {
                let b = tuple.get(*bag)?.as_bag()?;
                let mut out = Bag::empty();
                for t in b.iter() {
                    out.push(Tuple::new(vec![t.get(*attr)?.clone()]));
                }
                Ok(Value::Bag(out))
            }
            CExpr::Unary { op, inner } => {
                let v = inner.eval(tuple)?;
                eval_unary(*op, v)
            }
            CExpr::Binary { op, left, right } => {
                let l = left.eval(tuple)?;
                // Short-circuit logic before evaluating the right side.
                if *op == BinOp::And && l == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                if *op == BinOp::Or && l == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let r = right.eval(tuple)?;
                eval_binary(*op, l, r)
            }
            CExpr::IsNull { inner, negated } => {
                let v = inner.eval(tuple)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// The field positions this expression reads (used to wire black-box
    /// provenance inputs and v-ref propagation).
    pub fn referenced_fields(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_fields(&self, out: &mut Vec<usize>) {
        match self {
            CExpr::Lit(_) => {}
            CExpr::Field(i) => out.push(*i),
            CExpr::BagProject { bag, .. } => out.push(*bag),
            CExpr::Unary { inner, .. } => inner.collect_fields(out),
            CExpr::Binary { left, right, .. } => {
                left.collect_fields(out);
                right.collect_fields(out);
            }
            CExpr::IsNull { inner, .. } => inner.collect_fields(out),
        }
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(PigError::Eval(format!(
                "cannot negate value of type {}",
                other.type_name()
            ))),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(PigError::Eval(format!(
                "NOT applied to non-boolean {}",
                other.type_name()
            ))),
        },
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if op.is_logic() {
        return eval_logic(op, l, r);
    }
    // Arithmetic and comparisons are null-propagating (Pig semantics).
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.cmp(&r);
        let b = match op {
            BinOp::Eq => ord == Ordering::Equal,
            BinOp::Neq => ord != Ordering::Equal,
            BinOp::Lt => ord == Ordering::Less,
            BinOp::Lte => ord != Ordering::Greater,
            BinOp::Gt => ord == Ordering::Greater,
            BinOp::Gte => ord != Ordering::Less,
            _ => unreachable!("comparison ops covered"),
        };
        return Ok(Value::Bool(b));
    }
    // Arithmetic: int⊗int stays int (except / by zero), otherwise float.
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let v = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Ok(Value::Null); // Pig: x/0 → null
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Ok(Value::Null);
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!("arithmetic ops covered"),
            };
            v.map(Value::Int)
                .ok_or_else(|| PigError::Eval(format!("integer overflow in {a} {op} {b}")))
        }
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinOp::Mod => a % b,
                _ => unreachable!("arithmetic ops covered"),
            };
            Ok(Value::Float(v))
        }
    }
}

/// Three-valued logic for AND / OR.
fn eval_logic(op: BinOp, l: Value, r: Value) -> Result<Value> {
    let as_opt = |v: &Value| -> Result<Option<bool>> {
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(PigError::Eval(format!(
                "{op} applied to non-boolean {}",
                other.type_name()
            ))),
        }
    };
    let a = as_opt(&l)?;
    let b = as_opt(&r)?;
    let out = match op {
        BinOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("logic ops covered"),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    fn field(i: usize) -> CExpr {
        CExpr::Field(i)
    }

    fn lit(v: impl Into<Value>) -> CExpr {
        CExpr::Lit(v.into())
    }

    fn bin(op: BinOp, l: CExpr, r: CExpr) -> CExpr {
        CExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_int_preservation() {
        let tup = t(vec![Value::Int(7), Value::Int(2)]);
        assert_eq!(
            bin(BinOp::Add, field(0), field(1)).eval(&tup).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            bin(BinOp::Div, field(0), field(1)).eval(&tup).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(BinOp::Mod, field(0), field(1)).eval(&tup).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        let tup = t(vec![Value::Int(7), Value::Float(2.0)]);
        assert_eq!(
            bin(BinOp::Div, field(0), field(1)).eval(&tup).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let tup = t(vec![Value::Int(7), Value::Int(0)]);
        assert_eq!(
            bin(BinOp::Div, field(0), field(1)).eval(&tup).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn overflow_is_error_not_wrap() {
        let tup = t(vec![Value::Int(i64::MAX), Value::Int(1)]);
        assert!(bin(BinOp::Add, field(0), field(1)).eval(&tup).is_err());
    }

    #[test]
    fn comparisons() {
        let tup = t(vec![Value::Int(3), Value::Float(3.0), Value::str("abc")]);
        assert_eq!(
            bin(BinOp::Eq, field(0), field(1)).eval(&tup).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinOp::Lt, field(2), lit("abd")).eval(&tup).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn null_propagation_in_comparison() {
        let tup = t(vec![Value::Null]);
        assert_eq!(
            bin(BinOp::Eq, field(0), lit(1i64)).eval(&tup).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        let tup = t(vec![Value::Null]);
        // null AND false = false
        assert_eq!(
            bin(BinOp::And, field(0), lit(false)).eval(&tup).unwrap(),
            Value::Bool(false)
        );
        // null AND true = null
        assert_eq!(
            bin(BinOp::And, field(0), lit(true)).eval(&tup).unwrap(),
            Value::Null
        );
        // null OR true = true
        assert_eq!(
            bin(BinOp::Or, field(0), lit(true)).eval(&tup).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // false AND (1 + 'x') — rhs would error, but is never evaluated
        let bad = bin(BinOp::Add, lit(1i64), lit("x"));
        let e = bin(BinOp::And, lit(false), bad);
        assert_eq!(e.eval(&t(vec![])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn is_null_and_negation() {
        let tup = t(vec![Value::Null, Value::Int(1)]);
        let e = CExpr::IsNull {
            inner: Box::new(field(0)),
            negated: false,
        };
        assert_eq!(e.eval(&tup).unwrap(), Value::Bool(true));
        let e = CExpr::IsNull {
            inner: Box::new(field(1)),
            negated: true,
        };
        assert_eq!(e.eval(&tup).unwrap(), Value::Bool(true));
    }

    #[test]
    fn bag_project_extracts_attr() {
        let inner = Bag::from_tuples(vec![
            Tuple::new(vec![Value::str("a"), Value::Int(1)]),
            Tuple::new(vec![Value::str("b"), Value::Int(2)]),
        ]);
        let tup = t(vec![Value::Bag(inner)]);
        let e = CExpr::BagProject { bag: 0, attr: 1 };
        let out = e.eval(&tup).unwrap();
        let b = out.as_bag().unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.tuples()[0].get(0).unwrap(), &Value::Int(1));
    }

    #[test]
    fn referenced_fields_dedup_sorted() {
        let e = bin(BinOp::Add, bin(BinOp::Mul, field(3), field(1)), field(3));
        assert_eq!(e.referenced_fields(), vec![1, 3]);
    }

    #[test]
    fn unary_neg_and_not() {
        let tup = t(vec![Value::Int(5), Value::Bool(true), Value::Null]);
        let neg = CExpr::Unary {
            op: UnaryOp::Neg,
            inner: Box::new(field(0)),
        };
        assert_eq!(neg.eval(&tup).unwrap(), Value::Int(-5));
        let not = CExpr::Unary {
            op: UnaryOp::Not,
            inner: Box::new(field(1)),
        };
        assert_eq!(not.eval(&tup).unwrap(), Value::Bool(false));
        let not_null = CExpr::Unary {
            op: UnaryOp::Not,
            inner: Box::new(field(2)),
        };
        assert_eq!(not_null.eval(&tup).unwrap(), Value::Null);
    }
}
