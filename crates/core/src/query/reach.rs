//! Precomputed bidirectional reachability index.
//!
//! §5.1 discusses the design trade-off: "An alternative is to pre-compute
//! the transitive closure of each node, or to keep pair-wise reachability
//! information. Both these options would result in higher memory
//! overhead, but may speed up query processing." This module implements
//! that alternative — in **both directions**: one descendant bitset and
//! one ancestor bitset per node, so `DESCENDANTS OF` and `ANCESTORS OF`
//! are symmetric closure lookups and the planner's cost model does not
//! privilege one walk direction over the other.
//!
//! The index is **incrementally maintained** rather than rebuilt.
//! Mutations in this system are structured: deletion propagation only
//! ever *removes* reachability, and zooms flip visibility of a known
//! node set while wiring in (or retiring) composite nodes. After any
//! such mutation, [`ReachIndex::repair`] recomputes only the *affected
//! region* — the nodes that can reach (or be reached from) a changed
//! node — instead of the whole closure. [`ReachIndex::matches_fresh_build`]
//! is the exactness oracle: a repaired index must be bit-identical to a
//! from-scratch build (asserted in debug builds by `proql::Session` and
//! property-tested over random mutation sequences).

use crate::graph::bitset::BitSet;
use crate::graph::node::NodeId;
use crate::store::GraphStore;

/// Bidirectional transitive closure: per node, a descendant bitset and
/// an ancestor bitset (its transpose).
///
/// Memory is O(2·V²/8) bytes — the index reports its own footprint so
/// the ablation can chart memory against query speedup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachIndex {
    descendants: Vec<BitSet>,
    ancestors: Vec<BitSet>,
}

/// Which closure a repair pass recomputes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Closure {
    Descendants,
    Ancestors,
}

impl ReachIndex {
    /// Build both closures over visible nodes.
    ///
    /// Provenance graphs are DAGs; descendant sets are computed in
    /// reverse topological order (each node's set is the union of its
    /// visible successors' sets plus the successors themselves) and
    /// ancestor sets in one mirror pass in forward order.
    pub fn build<S: GraphStore + ?Sized>(graph: &S) -> ReachIndex {
        let n = graph.node_count();
        let order = topo_order(graph);
        let mut descendants: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &v in order.iter().rev() {
            if !graph.is_visible(v) {
                continue;
            }
            // Collect into a scratch set, then store (avoids aliasing
            // two entries of `descendants` at once).
            let mut acc = BitSet::new(n);
            for s in graph.succs_of(v) {
                if graph.is_visible(s) {
                    acc.insert(s.index());
                    acc.union_with(&descendants[s.index()]);
                }
            }
            descendants[v.index()] = acc;
        }
        let mut ancestors: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for &v in order.iter() {
            if !graph.is_visible(v) {
                continue;
            }
            let mut acc = BitSet::new(n);
            for p in graph.preds_of(v) {
                if graph.is_visible(p) {
                    acc.insert(p.index());
                    acc.union_with(&ancestors[p.index()]);
                }
            }
            ancestors[v.index()] = acc;
        }
        ReachIndex {
            descendants,
            ancestors,
        }
    }

    /// Is `to` a (strict) descendant of `from`?
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.descendants[from.index()].contains(to.index())
    }

    /// All descendants of `from`, ascending.
    pub fn descendants(&self, from: NodeId) -> Vec<NodeId> {
        self.descendants[from.index()]
            .iter()
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// All ancestors of `of`, ascending.
    pub fn ancestors(&self, of: NodeId) -> Vec<NodeId> {
        self.ancestors[of.index()]
            .iter()
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Size of the descendant cone (the exact work an indexed
    /// descendant walk does — the planner's cost estimate).
    pub fn descendant_count(&self, from: NodeId) -> usize {
        self.descendants[from.index()].count()
    }

    /// Size of the ancestor cone.
    pub fn ancestor_count(&self, of: NodeId) -> usize {
        self.ancestors[of.index()].count()
    }

    /// Approximate heap footprint in bytes (both closures, word
    /// buffers only — see [`crate::obs::HeapSize`] for the full
    /// breakdown including row headers).
    pub fn memory_bytes(&self) -> usize {
        self.descendants
            .iter()
            .chain(self.ancestors.iter())
            .map(|b| b.capacity().div_ceil(64) * 8)
            .sum()
    }

    /// Repair both closures in place after a graph mutation.
    ///
    /// `changed` must name every node whose **visibility flipped**
    /// (deleted, hidden, restored) and every node whose **adjacency
    /// changed** (composite zoom nodes plus the inputs/outputs they were
    /// wired to). From those seeds the affected region is discovered by
    /// a BFS through visible neighbours — any node whose closure can
    /// have changed reaches a seed through surviving nodes (take the
    /// first changed node on a gained/lost path: its prefix is wholly
    /// visible) — and only that region is recomputed, in dependency
    /// order local to the region.
    ///
    /// New nodes appended by the mutation (zoom composites) grow every
    /// bitset, so a repaired index stays bit-identical to a fresh
    /// [`ReachIndex::build`] — see [`ReachIndex::matches_fresh_build`].
    pub fn repair<S: GraphStore + ?Sized>(&mut self, graph: &S, changed: &[NodeId]) {
        let n = graph.node_count();
        if n > self.descendants.len() {
            for set in self.descendants.iter_mut().chain(self.ancestors.iter_mut()) {
                set.grow(n);
            }
            while self.descendants.len() < n {
                self.descendants.push(BitSet::new(n));
                self.ancestors.push(BitSet::new(n));
            }
        }
        self.repair_closure(graph, changed, Closure::Descendants);
        self.repair_closure(graph, changed, Closure::Ancestors);
    }

    /// Recompute one closure over the affected region.
    ///
    /// For the descendant closure, "up" edges (towards ancestors) find
    /// the dirty region and "down" edges (towards descendants) feed the
    /// recomputation; the ancestor closure mirrors both.
    fn repair_closure<S: GraphStore + ?Sized>(
        &mut self,
        graph: &S,
        changed: &[NodeId],
        which: Closure,
    ) {
        let n = graph.node_count();
        let sets = match which {
            Closure::Descendants => &mut self.descendants,
            Closure::Ancestors => &mut self.ancestors,
        };
        let up = |v: NodeId| match which {
            Closure::Descendants => graph.preds_of(v),
            Closure::Ancestors => graph.succs_of(v),
        };
        let down = |v: NodeId| match which {
            Closure::Descendants => graph.succs_of(v),
            Closure::Ancestors => graph.preds_of(v),
        };

        // 1. Dirty discovery: every changed node, plus every visible
        //    node that reaches one against the closure direction.
        let mut dirty = BitSet::new(n);
        let mut queue: Vec<NodeId> = Vec::new();
        for &c in changed {
            if dirty.insert(c.index()) {
                queue.push(c);
            }
        }
        while let Some(v) = queue.pop() {
            for u in up(v) {
                if graph.is_visible(u) && dirty.insert(u.index()) {
                    queue.push(u);
                }
            }
        }

        // 2. Local Kahn order: a dirty node is ready once all its dirty
        //    "down" neighbours are recomputed.
        let dirty_ids: Vec<NodeId> = dirty.iter().map(|i| NodeId(i as u32)).collect();
        let mut deg = vec![0u32; n];
        for &v in &dirty_ids {
            deg[v.index()] = down(v).iter().filter(|d| dirty.contains(d.index())).count() as u32;
        }
        let mut ready: Vec<NodeId> = dirty_ids
            .iter()
            .copied()
            .filter(|v| deg[v.index()] == 0)
            .collect();
        let mut processed = 0usize;
        while let Some(v) = ready.pop() {
            processed += 1;
            let mut acc = BitSet::new(sets[v.index()].capacity());
            if graph.is_visible(v) {
                for d in down(v) {
                    if graph.is_visible(d) {
                        acc.insert(d.index());
                        acc.union_with(&sets[d.index()]);
                    }
                }
            }
            sets[v.index()] = acc;
            for u in up(v) {
                if dirty.contains(u.index()) {
                    deg[u.index()] -= 1;
                    if deg[u.index()] == 0 {
                        ready.push(u);
                    }
                }
            }
        }
        debug_assert_eq!(
            processed,
            dirty_ids.len(),
            "affected region of a DAG must drain"
        );
    }

    /// Is this index bit-identical to a fresh build over `graph`? The
    /// exactness oracle behind the incremental-repair debug assertion
    /// and the property tests.
    pub fn matches_fresh_build<S: GraphStore + ?Sized>(&self, graph: &S) -> bool {
        *self == ReachIndex::build(graph)
    }
}

impl crate::obs::HeapSize for ReachIndex {
    fn heap_breakdown(&self) -> Vec<(&'static str, usize)> {
        let desc: usize = self.descendants.iter().map(BitSet::heap_bytes).sum();
        let anc: usize = self.ancestors.iter().map(BitSet::heap_bytes).sum();
        let rows = crate::obs::vec_alloc_bytes(&self.descendants)
            + crate::obs::vec_alloc_bytes(&self.ancestors);
        vec![
            ("descendant_closure", desc),
            ("ancestor_closure", anc),
            ("row_headers", rows),
        ]
    }
}

/// Kahn topological order over all allocated nodes (hidden nodes keep
/// their structural edges, so the order covers them too).
fn topo_order<S: GraphStore + ?Sized>(graph: &S) -> Vec<NodeId> {
    let n = graph.node_count();
    let mut indeg = vec![0usize; n];
    for i in 0..n {
        for s in graph.succs_of(NodeId(i as u32)) {
            indeg[s.index()] += 1;
        }
    }
    let mut queue: Vec<NodeId> = (0..n)
        .map(|i| NodeId(i as u32))
        .filter(|id| indeg[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for s in graph.succs_of(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "provenance graph must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProvGraph;
    use crate::query::{propagate_deletion_inplace, zoom_in, zoom_out};

    #[test]
    fn closure_matches_bfs() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        let u = g.add_plus(&[t]);
        let w = g.add_plus(&[t, u]);
        let idx = ReachIndex::build(&g);
        assert!(idx.reaches(a, t));
        assert!(idx.reaches(a, w));
        assert!(idx.reaches(t, u));
        assert!(!idx.reaches(u, t));
        assert!(!idx.reaches(a, b));
        assert_eq!(idx.descendants(a), vec![t, u, w]);
    }

    #[test]
    fn ancestor_closure_is_the_transpose() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        let u = g.add_plus(&[t]);
        let w = g.add_plus(&[t, u]);
        let idx = ReachIndex::build(&g);
        assert_eq!(idx.ancestors(w), vec![a, b, t, u]);
        assert_eq!(idx.ancestors(t), vec![a, b]);
        assert!(idx.ancestors(a).is_empty());
        // Transpose identity: to ∈ desc(from) ⇔ from ∈ anc(to).
        for (from, _) in g.iter_visible() {
            for (to, _) in g.iter_visible() {
                assert_eq!(
                    idx.descendants(from).contains(&to),
                    idx.ancestors(to).contains(&from),
                    "transpose mismatch {from}→{to}"
                );
            }
        }
        assert_eq!(idx.ancestor_count(w), 4);
        assert_eq!(idx.descendant_count(a), 3);
    }

    #[test]
    fn hidden_nodes_break_paths() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let t = g.add_plus(&[a]);
        let u = g.add_plus(&[t]);
        g.node_mut(t).zoom_hidden = true;
        let idx = ReachIndex::build(&g);
        assert!(!idx.reaches(a, u), "only path goes through hidden node");
        assert!(idx.ancestors(u).is_empty(), "transpose agrees");
    }

    #[test]
    fn memory_reporting_scales_quadratically() {
        let mut g = ProvGraph::new();
        for i in 0..130 {
            g.add_base(&format!("t{i}"));
        }
        let idx = ReachIndex::build(&g);
        // 130 nodes → ⌈130/64⌉ = 3 words = 24 bytes each, two closures
        assert_eq!(idx.memory_bytes(), 2 * 130 * 24);
    }

    #[test]
    fn repair_after_deletion_matches_fresh_build() {
        // a and b feed a joint t; deleting a kills t and its plus chain
        // but leaves the alternative-derivation branch alive.
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        let u = g.add_plus(&[t]);
        let alt = g.add_plus(&[b]);
        let w = g.add_plus(&[u, alt]);
        let mut idx = ReachIndex::build(&g);
        let report = propagate_deletion_inplace(&mut g, a).unwrap();
        idx.repair(&g, &report.deleted);
        assert!(idx.matches_fresh_build(&g), "repaired ≠ fresh build");
        // b still reaches w through the surviving branch only.
        assert!(idx.reaches(b, w));
        assert!(!idx.reaches(b, t));
        assert!(idx.descendants(a).is_empty());
        assert_eq!(idx.ancestors(w), vec![b, alt]);
        let _ = u;
    }

    #[test]
    fn repair_after_root_deletion_clears_everything_reachable() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let p1 = g.add_plus(&[a]);
        let p2 = g.add_plus(&[p1]);
        let mut idx = ReachIndex::build(&g);
        let report = propagate_deletion_inplace(&mut g, a).unwrap();
        idx.repair(&g, &report.deleted);
        assert!(idx.matches_fresh_build(&g));
        for v in [a, p1, p2] {
            assert!(idx.descendants(v).is_empty());
            assert!(idx.ancestors(v).is_empty());
        }
    }

    /// Zoom repair, including index growth for the appended composite
    /// nodes and the exact changed-set contract `proql`'s session uses.
    #[test]
    fn repair_after_zoom_out_and_in_matches_fresh_build() {
        use crate::graph::tracker::{GraphTracker, Tracker};
        let mut t = GraphTracker::new();
        let wi = t.workflow_input("I1");
        let c2 = t.base("C2");
        for exec in 0..2 {
            t.begin_invocation("M", exec);
            let i = t.module_input(wi);
            let s = t.state_node(c2);
            let join = t.times(&[i, s]);
            let _o = t.module_output(join, &[]);
            t.end_invocation();
        }
        let mut g = t.finish();
        let mut idx = ReachIndex::build(&g);

        let created = zoom_out(&mut g, &["M"]).unwrap();
        let mut changed: Vec<NodeId> = created.clone();
        let stash = g.stash_of("M").expect("just zoomed");
        changed.extend_from_slice(&stash.hidden);
        for &z in &created {
            changed.extend_from_slice(g.node(z).preds());
            changed.extend_from_slice(g.node(z).succs());
        }
        idx.repair(&g, &changed);
        assert!(idx.matches_fresh_build(&g), "zoom-out repair ≠ fresh");

        // Zoom back in: capture the stash (and the composites'
        // neighbours) before the edges are unlinked.
        let stash = g.stash_of("M").unwrap();
        let mut changed: Vec<NodeId> = stash.hidden.clone();
        for z in stash.zoom_nodes.clone() {
            changed.push(z);
            changed.extend_from_slice(g.node(z).preds());
            changed.extend_from_slice(g.node(z).succs());
        }
        zoom_in(&mut g, &["M"]).unwrap();
        idx.repair(&g, &changed);
        assert!(idx.matches_fresh_build(&g), "zoom-in repair ≠ fresh");
    }

    #[test]
    fn repair_with_empty_change_set_is_identity() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let t = g.add_plus(&[a]);
        let mut idx = ReachIndex::build(&g);
        let before = idx.clone();
        idx.repair(&g, &[]);
        assert_eq!(idx, before);
        let _ = t;
    }
}
