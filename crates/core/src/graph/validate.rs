//! Validation: Definition 4.1 as an executable specification.
//!
//! The production ZoomOut uses the O(1)-per-node `Role` tags assigned at
//! construction time. This module implements the paper's *definitional*
//! characterization of an invocation's intermediate computation —
//! reachability from the invocation's input/state nodes without crossing
//! an output node — so tests (and the `ablation_zoom` bench) can check
//! that the two coincide.

use std::collections::VecDeque;

use super::bitset::BitSet;
use super::node::{InvocationId, NodeId, NodeKind, Role};
use super::ProvGraph;

/// Compute the intermediate-computation node set of `inv` per
/// Definition 4.1: nodes `v` with a directed path from an input or state
/// node of the invocation (or transitively from intermediate v-nodes)
/// such that no output node occurs on the path (including `v` itself).
pub fn intermediate_nodes_by_definition(graph: &ProvGraph, inv: InvocationId) -> Vec<NodeId> {
    let mut seeds: Vec<NodeId> = Vec::new();
    for (id, node) in graph.iter_visible() {
        match node.role {
            Role::ModuleInput(i) | Role::State(i) if i == inv => seeds.push(id),
            _ => {}
        }
    }
    // BFS forward from seeds; do not traverse through output nodes; the
    // seeds themselves are not intermediate (v ≠ v₀).
    let mut reached = BitSet::new(graph.len());
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for s in &seeds {
        for &succ in graph.node(*s).succs() {
            enqueue(graph, succ, &mut reached, &mut queue);
        }
    }
    let mut out = Vec::new();
    while let Some(v) = queue.pop_front() {
        out.push(v);
        for &succ in graph.node(v).succs() {
            enqueue(graph, succ, &mut reached, &mut queue);
        }
    }
    // Clause (iii) closure for source v-nodes: a constant v-node has no
    // incoming edges, so forward reachability misses it — but it *is*
    // part of the intermediate computation when everything it feeds is
    // (e.g. the value node of an aggregation tensor).
    let snapshot = out.clone();
    for v in snapshot {
        for &p in graph.node(v).preds() {
            let pn = graph.node(p);
            if reached.contains(p.index()) || !pn.is_visible() {
                continue;
            }
            if pn.preds().is_empty()
                && pn.kind.is_value_node()
                && pn
                    .succs()
                    .iter()
                    .filter(|s| graph.node(**s).is_visible())
                    .all(|s| reached.contains(s.index()))
            {
                reached.insert(p.index());
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn enqueue(graph: &ProvGraph, v: NodeId, reached: &mut BitSet, queue: &mut VecDeque<NodeId>) {
    let node = graph.node(v);
    if !node.is_visible() {
        return;
    }
    // Condition (2): no output node on the path, including v itself.
    // Module input and state nodes also terminate the walk: they are the
    // boundary of a (possibly later) invocation, not internals of this
    // one. Cross-invocation edges exist because a module's new state
    // tuples keep the provenance of the intermediate nodes that derived
    // them, and the next invocation wraps those nodes in fresh `s` nodes
    // — the walk must not continue through that boundary (a clarifying
    // interpretation of Def. 4.1 for shared state).
    if matches!(
        node.kind,
        NodeKind::ModuleOutput | NodeKind::ModuleInput | NodeKind::StateUnit
    ) {
        return;
    }
    if reached.insert(v.index()) {
        queue.push_back(v);
    }
}

/// Check that role tags agree with the definitional characterization for
/// every invocation. Returns a human-readable description of the first
/// mismatch.
pub fn check_intermediate_tags(graph: &ProvGraph) -> Result<(), String> {
    for (idx, _) in graph.invocations().iter().enumerate() {
        let inv = InvocationId(idx as u32);
        let by_def = intermediate_nodes_by_definition(graph, inv);
        let mut by_tag: Vec<NodeId> = graph
            .iter_visible()
            .filter(|(_, n)| n.role == Role::Intermediate(inv))
            .map(|(id, _)| id)
            .collect();
        by_tag.sort();
        if by_def != by_tag {
            return Err(format!(
                "invocation {inv} ({}): definition gives {:?}, tags give {:?}",
                graph.invocation(inv).module,
                by_def,
                by_tag
            ));
        }
    }
    Ok(())
}

/// Structural sanity: adjacency lists are symmetric and reference valid
/// ids; no self-loops.
pub fn check_structure(graph: &ProvGraph) -> Result<(), String> {
    for (id, node) in graph.iter() {
        for &p in node.preds() {
            if p.index() >= graph.len() {
                return Err(format!("{id} has out-of-range pred {p}"));
            }
            if p == id {
                return Err(format!("{id} has a self-loop"));
            }
            if !graph.node(p).succs().contains(&id) {
                return Err(format!("edge {p}→{id} missing forward direction"));
            }
        }
        for &s in node.succs() {
            if !graph.node(s).preds().contains(&id) {
                return Err(format!("edge {id}→{s} missing backward direction"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tracker::{GraphTracker, Tracker};

    fn small_invocation_graph() -> ProvGraph {
        let mut t = GraphTracker::new();
        let wi = t.workflow_input("I1");
        let c2 = t.base("C2");
        t.begin_invocation("M", 0);
        let i = t.module_input(wi);
        let s = t.state_node(c2);
        let join = t.times(&[i, s]);
        let proj = t.plus(&[join]);
        t.module_output(proj, &[]);
        t.end_invocation();
        t.finish()
    }

    #[test]
    fn definition_matches_tags_on_small_graph() {
        let g = small_invocation_graph();
        check_intermediate_tags(&g).unwrap();
    }

    #[test]
    fn definition_excludes_io_and_downstream() {
        let mut t = GraphTracker::new();
        let wi = t.workflow_input("I1");
        t.begin_invocation("A", 0);
        let i = t.module_input(wi);
        let mid = t.plus(&[i]);
        let o = t.module_output(mid, &[]);
        t.end_invocation();
        t.begin_invocation("B", 0);
        let i2 = t.module_input(o);
        let mid2 = t.plus(&[i2]);
        t.module_output(mid2, &[]);
        t.end_invocation();
        let g = t.finish();
        let inv_a = g.invocations_of("A")[0];
        let nodes = intermediate_nodes_by_definition(&g, inv_a);
        // Only `mid` is intermediate for A — the walk stops at A's output
        // and never reaches B's internals.
        assert_eq!(nodes, vec![mid]);
        check_intermediate_tags(&g).unwrap();
    }

    #[test]
    fn structure_check_passes_for_tracker_built_graphs() {
        let g = small_invocation_graph();
        check_structure(&g).unwrap();
    }
}
