//! Graphviz (DOT) export of provenance graphs.
//!
//! Rendering conventions follow the paper's Figure 2(a) legend: p-nodes
//! are ellipses, v-nodes are boxes, module invocation nodes are bold,
//! zoomed-out composites are rounded rectangles. Only visible nodes are
//! exported, so exporting after ZoomOut / deletion shows the transformed
//! graph.

use std::fmt::Write as _;

use super::node::NodeKind;
use super::ProvGraph;

/// Render the visible part of the graph as a DOT digraph.
pub fn to_dot(graph: &ProvGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=BT;");
    for (id, node) in graph.iter_visible() {
        let label = escape(&node.kind.label());
        let (shape, extra) = match &node.kind {
            NodeKind::Invocation => ("ellipse", ", style=bold"),
            NodeKind::Zoomed { .. } => ("box", ", style=rounded"),
            k if k.is_value_node() => ("box", ""),
            NodeKind::WorkflowInput { .. } => ("ellipse", ", style=filled, fillcolor=lightgrey"),
            _ => ("ellipse", ""),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}: {}\", shape={}{}];",
            id.0, id, label, shape, extra
        );
    }
    for (id, node) in graph.iter_visible() {
        for &succ in node.succs() {
            if graph.node(succ).is_visible() {
                let _ = writeln!(out, "  n{} -> n{};", id.0, succ.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let p = g.add_plus(&[a, b]);
        let dot = to_dot(&g, "test");
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("n0 ->"));
        assert!(dot.contains(&format!("n{} [label=", p.0)));
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn hidden_nodes_are_not_exported() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let p = g.add_plus(&[a]);
        g.node_mut(p).deleted = true;
        let dot = to_dot(&g, "t");
        assert!(!dot.contains("->"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g = ProvGraph::new();
        g.add_base("to\"ken");
        let dot = to_dot(&g, "t");
        assert!(dot.contains("to\\\"ken"));
    }
}
