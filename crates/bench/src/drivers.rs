//! Measurement drivers shared by the Criterion benches and the
//! `experiments` binary.
//!
//! Absolute numbers differ from the paper's (its substrate was Pig 0.6
//! on Hadoop / a 2010 MacBook Pro; ours is an in-process engine), but
//! each driver reproduces the *shape* the paper reports: who is slower,
//! by what factor, and how curves scale.

use std::time::{Duration, Instant};

use lipstick_core::graph::stats::stats;
use lipstick_core::graph::{GraphTracker, NoTracker};
use lipstick_core::query::{propagate_deletion, subgraph, zoom_in, zoom_out};
use lipstick_core::{NodeKind, ProvGraph};
use lipstick_piglatin::udf::UdfRegistry;
use lipstick_storage::{decode_graph, encode_graph};
use lipstick_workflow::parallel::execute_once_parallel;
use lipstick_workflow::WorkflowState;
use lipstick_workflowgen::{arctic, dealers, ArcticParams, DealersParams};

/// One measured run of the Car dealerships workflow.
pub struct DealersRun {
    pub elapsed: Duration,
    pub executions: usize,
    /// The provenance graph, when tracking was on.
    pub graph: Option<ProvGraph>,
}

/// Run the dealers workload with or without provenance (Fig 5(a)).
pub fn run_dealers(params: &DealersParams, with_provenance: bool) -> DealersRun {
    if with_provenance {
        let mut tracker = GraphTracker::new();
        let start = Instant::now();
        let (_, _, outcome) = dealers::run_declining(params, &mut tracker).expect("dealers run");
        let elapsed = start.elapsed();
        DealersRun {
            elapsed,
            executions: outcome.executions,
            graph: Some(tracker.finish()),
        }
    } else {
        let mut tracker = NoTracker;
        let start = Instant::now();
        let (_, _, outcome) = dealers::run_declining(params, &mut tracker).expect("dealers run");
        DealersRun {
            elapsed: start.elapsed(),
            executions: outcome.executions,
            graph: None,
        }
    }
}

/// Run the Arctic workload with or without provenance (Fig 5(b)).
pub fn run_arctic(params: &ArcticParams, with_provenance: bool) -> DealersRun {
    if with_provenance {
        let mut tracker = GraphTracker::new();
        let start = Instant::now();
        let (_, _, outs) = arctic::run(params, &mut tracker).expect("arctic run");
        let elapsed = start.elapsed();
        DealersRun {
            elapsed,
            executions: outs.len(),
            graph: Some(tracker.finish()),
        }
    } else {
        let mut tracker = NoTracker;
        let start = Instant::now();
        let (_, _, outs) = arctic::run(params, &mut tracker).expect("arctic run");
        DealersRun {
            elapsed: start.elapsed(),
            executions: outs.len(),
            graph: None,
        }
    }
}

/// Run the dealers workload on the parallel executor with the given
/// number of reducers (Fig 5(c)). Returns elapsed wall time.
pub fn run_dealers_parallel(
    params: &DealersParams,
    reducers: usize,
    with_provenance: bool,
) -> Duration {
    let mut udfs = UdfRegistry::new();
    let wf = dealers::build(&mut udfs);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let mut buyer = dealers::Buyer::draw(&mut rng);
    buyer.reserve = 0.0; // declining buyer: every execution happens

    if with_provenance {
        let mut tracker = GraphTracker::new();
        let mut state = WorkflowState::empty(&wf);
        dealers::seed_state(&wf, &mut state, &mut tracker, params).expect("seed");
        let start = Instant::now();
        for e in 0..params.num_exec {
            let input = dealers::execution_input(&buyer, e as u32, 0.99);
            let out = execute_once_parallel(
                &wf,
                &input,
                &mut state,
                &mut tracker,
                &udfs,
                e as u32,
                reducers,
            )
            .expect("parallel exec");
            debug_assert!(out.relation("Mcar", "Car").is_some());
        }
        start.elapsed()
    } else {
        let mut tracker = NoTracker;
        let mut state = WorkflowState::empty(&wf);
        dealers::seed_state(&wf, &mut state, &mut tracker, params).expect("seed");
        let start = Instant::now();
        for e in 0..params.num_exec {
            let input = dealers::execution_input(&buyer, e as u32, 0.99);
            let out = execute_once_parallel(
                &wf,
                &input,
                &mut state,
                &mut tracker,
                &udfs,
                e as u32,
                reducers,
            )
            .expect("parallel exec");
            debug_assert!(out.relation("Mcar", "Car").is_some());
        }
        start.elapsed()
    }
}

/// Serialize a graph, then measure loading it back into memory — the
/// Query Processor's graph-building step (Fig 6).
pub fn measure_graph_build(graph: &ProvGraph) -> (Duration, usize) {
    let bytes = encode_graph(graph).expect("no zoom active");
    let start = Instant::now();
    let loaded = decode_graph(&bytes).expect("round trip");
    let elapsed = start.elapsed();
    (elapsed, loaded.len())
}

/// Measure ZoomOut (and ZoomIn back) of one module (Fig 7(a)).
pub fn measure_zoom(graph: &mut ProvGraph, module: &str) -> (Duration, Duration) {
    let start = Instant::now();
    zoom_out(graph, &[module]).expect("zoom out");
    let out_time = start.elapsed();
    let start = Instant::now();
    zoom_in(graph, &[module]).expect("zoom in");
    let in_time = start.elapsed();
    (out_time, in_time)
}

/// Run subgraph queries from the `k` highest-fanout nodes (Fig 7(b));
/// returns (subgraph size, time) pairs.
pub fn measure_subgraphs(graph: &ProvGraph, k: usize) -> Vec<(usize, Duration)> {
    let roots = graph.top_fanout_nodes(k);
    let mut out = Vec::with_capacity(roots.len());
    for root in roots {
        let start = Instant::now();
        let result = subgraph(graph, root).expect("visible root");
        out.push((result.len(), start.elapsed()));
    }
    out
}

/// Propagate deletions from the `k` highest-fanout nodes (on clones;
/// §5.6 "Delete"); returns (deleted count, time) pairs.
pub fn measure_deletions(graph: &ProvGraph, k: usize) -> Vec<(usize, Duration)> {
    let roots = graph.top_fanout_nodes(k);
    let mut out = Vec::with_capacity(roots.len());
    for root in roots {
        let start = Instant::now();
        let (_, report) = propagate_deletion(graph, root).expect("visible root");
        out.push((report.deleted.len(), start.elapsed()));
    }
    out
}

/// §5.5 fine-grainedness: fraction of base/state tuples an output
/// depends on, for every module-output node of the final execution.
pub fn fine_grained_fractions(graph: &ProvGraph) -> Vec<f64> {
    let total_base = graph
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::BaseTuple { .. }))
        .count()
        .max(1);
    let outputs: Vec<_> = graph
        .iter_visible()
        .filter(|(_, n)| matches!(n.kind, NodeKind::ModuleOutput))
        .map(|(id, _)| id)
        .collect();
    outputs
        .iter()
        .rev()
        .take(16)
        .map(|&o| {
            let anc = lipstick_core::query::subgraph::ancestors(graph, o).expect("visible");
            let deps = anc
                .iter()
                .filter(|id| matches!(graph.node(**id).kind, NodeKind::BaseTuple { .. }))
                .count();
            deps as f64 / total_base as f64
        })
        .collect()
}

/// Graph size summary line used by the experiments binary.
pub fn graph_summary(graph: &ProvGraph) -> String {
    let s = stats(graph);
    format!("{} nodes / {} edges", s.nodes, s.edges)
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_workflowgen::{Selectivity, Topology};

    #[test]
    fn drivers_run_end_to_end_small() {
        let params = DealersParams {
            num_cars: 24,
            num_exec: 2,
            seed: 1,
        };
        let with = run_dealers(&params, true);
        let without = run_dealers(&params, false);
        assert!(with.graph.is_some());
        assert!(without.graph.is_none());
        assert_eq!(with.executions, without.executions);

        let g = with.graph.unwrap();
        let (build, nodes) = measure_graph_build(&g);
        assert!(nodes > 0);
        assert!(build.as_nanos() > 0);

        let mut g2 = g.clone();
        let (zo, zi) = measure_zoom(&mut g2, "Mdealer1");
        assert!(zo.as_nanos() > 0 && zi.as_nanos() > 0);
        assert_eq!(g2.visible_signature(), g.visible_signature());

        assert!(!measure_subgraphs(&g, 5).is_empty());
        assert!(!measure_deletions(&g, 5).is_empty());
        let fractions = fine_grained_fractions(&g);
        assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));
    }

    #[test]
    fn parallel_driver_runs() {
        let params = DealersParams {
            num_cars: 24,
            num_exec: 2,
            seed: 1,
        };
        for reducers in [1, 3] {
            let d = run_dealers_parallel(&params, reducers, true);
            assert!(d.as_nanos() > 0);
        }
    }

    #[test]
    fn arctic_driver_runs() {
        let params = ArcticParams {
            stations: 3,
            topology: Topology::Dense { fanout: 2 },
            selectivity: Selectivity::Year,
            num_exec: 2,
            seed: 1,
        };
        let run = run_arctic(&params, true);
        assert!(run.graph.is_some());
    }
}
