//! Minimal in-tree subset of the `criterion` API: groups, `iter` /
//! `iter_batched`, ids, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark runs a short warmup then a fixed number of
//! timed iterations and prints the mean wall time — indicative numbers
//! for comparing strategies, not statistically rigorous estimates.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark; iteration stops early once spent.
const TIME_BUDGET: Duration = Duration::from_secs(3);

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&self.name, &id.into_label());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&self.name, &id.into_label());
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warmup
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.iters == 0 {
            println!("{group}/{label}: no samples");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!(
            "{group}/{label}: mean {:.3} ms over {} iters",
            mean.as_secs_f64() * 1e3,
            self.iters
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut runs = 0;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("g", 1), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs >= 2);
    }
}
