//! LEB128 variable-length integers (unsigned) with zigzag for signed.

use bytes::{Buf, BufMut};

use crate::error::{Result, StorageError};

/// Append an unsigned varint.
pub fn put_u64(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read an unsigned varint.
pub fn get_u64(buf: &mut impl Buf) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(StorageError::Corrupt("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed varint.
pub fn put_i64(buf: &mut impl BufMut, v: i64) {
    put_u64(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Read a zigzag-encoded signed varint.
pub fn get_i64(buf: &mut impl Buf) -> Result<i64> {
    let z = get_u64(buf)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

/// Read a count that prefixes `count` encoded elements, each at least
/// one byte long. A declared count larger than the remaining buffer can
/// only come from corruption — rejecting it here caps what downstream
/// `Vec::with_capacity` calls can allocate from untrusted input.
pub fn get_count(buf: &mut impl Buf) -> Result<usize> {
    let n = get_u64(buf)?;
    let remaining = buf.remaining() as u64;
    if n > remaining {
        return Err(StorageError::Corrupt(format!(
            "declared count {n} exceeds {remaining} remaining bytes"
        )));
    }
    Ok(n as usize)
}

/// Read a varint that must fit in `u32` (node ids, invocation ids,
/// execution numbers). Values above `u32::MAX` previously wrapped
/// silently via `as u32`; they are corruption and must be rejected.
pub fn get_u32(buf: &mut impl Buf) -> Result<u32> {
    let raw = get_u64(buf)?;
    u32::try_from(raw)
        .map_err(|_| StorageError::Corrupt(format!("value {raw} overflows 32-bit field")))
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> Result<String> {
    let len = get_u64(buf)? as usize;
    if buf.remaining() < len {
        return Err(StorageError::Corrupt("truncated string".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| StorageError::Corrupt("invalid UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    #[test]
    fn u64_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut b = BytesMut::new();
            put_u64(&mut b, v);
            let mut r = b.freeze();
            assert_eq!(get_u64(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn i64_round_trip_boundaries() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -64, 63] {
            let mut b = BytesMut::new();
            put_i64(&mut b, v);
            let mut r = b.freeze();
            assert_eq!(get_i64(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn truncated_varint_is_error() {
        let mut b = BytesMut::new();
        put_u64(&mut b, u64::MAX);
        let frozen = b.freeze();
        let mut r = frozen.slice(0..frozen.len() - 1);
        assert!(get_u64(&mut r).is_err());
    }

    #[test]
    fn string_round_trip() {
        let mut b = BytesMut::new();
        put_str(&mut b, "héllo ⊗ wörld");
        let mut r = b.freeze();
        assert_eq!(get_str(&mut r).unwrap(), "héllo ⊗ wörld");
    }

    #[test]
    fn truncated_string_is_error() {
        let mut b = BytesMut::new();
        put_str(&mut b, "abcdef");
        let frozen = b.freeze();
        let mut r = frozen.slice(0..3);
        assert!(get_str(&mut r).is_err());
    }

    proptest! {
        #[test]
        fn u64_round_trip(v: u64) {
            let mut b = BytesMut::new();
            put_u64(&mut b, v);
            let mut r = b.freeze();
            prop_assert_eq!(get_u64(&mut r).unwrap(), v);
        }

        #[test]
        fn i64_round_trip(v: i64) {
            let mut b = BytesMut::new();
            put_i64(&mut b, v);
            let mut r = b.freeze();
            prop_assert_eq!(get_i64(&mut r).unwrap(), v);
        }
    }
}
