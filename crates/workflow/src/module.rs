//! Module specifications (Definition 2.1).

use std::sync::Arc;

use lipstick_nrel::Schema;

/// A module specification: the 5-tuple
/// `(Sin, Sstate, Sout, Qstate, Qout)` of Definition 2.1. Schemas are
/// *named* relation schemas (a module may have several input / state /
/// output relations, e.g. the dealer's `Cars`, `SoldCars`,
/// `InventoryBids`).
///
/// `Qstate` and `Qout` are Pig Latin scripts. They run sequentially in
/// one environment seeded with the module's input and (pre-invocation)
/// state relations; after both run,
///
/// - for every state relation that the scripts re-bound, the new
///   binding becomes the module's state (untouched state relations are
///   carried over unchanged);
/// - every output relation must be bound and becomes the module output.
///
/// This realizes `Qstate : Sin × Sstate → Sstate` and
/// `Qout : Sin × Sstate → Sout` for straight-line scripts (the paper's
/// own examples never re-read a state relation after rewriting it).
#[derive(Debug, Clone)]
pub struct ModuleSpec {
    /// Specification name (instances add their own identity).
    pub name: String,
    /// Input relations `Sin`.
    pub input_schema: Vec<(String, Schema)>,
    /// State relations `Sstate`.
    pub state_schema: Vec<(String, Schema)>,
    /// Output relations `Sout`.
    pub output_schema: Vec<(String, Schema)>,
    /// State-manipulation query (may be empty).
    pub q_state: String,
    /// Output query.
    pub q_out: String,
}

impl ModuleSpec {
    /// Convenience builder for a module with single input/output
    /// relations and no state.
    pub fn stateless(
        name: impl Into<String>,
        input: (&str, Schema),
        output: (&str, Schema),
        q_out: impl Into<String>,
    ) -> Arc<ModuleSpec> {
        Arc::new(ModuleSpec {
            name: name.into(),
            input_schema: vec![(input.0.to_string(), input.1)],
            state_schema: Vec::new(),
            output_schema: vec![(output.0.to_string(), output.1)],
            q_state: String::new(),
            q_out: q_out.into(),
        })
    }

    /// Names of input relations.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.input_schema.iter().map(|(n, _)| n.as_str())
    }

    /// Names of state relations.
    pub fn state_names(&self) -> impl Iterator<Item = &str> {
        self.state_schema.iter().map(|(n, _)| n.as_str())
    }

    /// Names of output relations.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.output_schema.iter().map(|(n, _)| n.as_str())
    }

    /// Does `rel` belong to `Sout`?
    pub fn has_output(&self, rel: &str) -> bool {
        self.output_schema.iter().any(|(n, _)| n == rel)
    }

    /// Does `rel` belong to `Sin`?
    pub fn has_input(&self, rel: &str) -> bool {
        self.input_schema.iter().any(|(n, _)| n == rel)
    }

    /// The combined script (Qstate then Qout).
    pub fn combined_script(&self) -> String {
        let mut s = String::with_capacity(self.q_state.len() + self.q_out.len() + 1);
        s.push_str(&self.q_state);
        s.push('\n');
        s.push_str(&self.q_out);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_nrel::DataType;

    #[test]
    fn stateless_builder() {
        let m = ModuleSpec::stateless(
            "Magg",
            ("Bids", Schema::named(&[("Price", DataType::Float)])),
            ("Best", Schema::named(&[("Price", DataType::Float)])),
            "G = GROUP Bids ALL; Best = FOREACH G GENERATE MIN(Bids.Price) AS Price;",
        );
        assert_eq!(m.name, "Magg");
        assert!(m.has_input("Bids"));
        assert!(m.has_output("Best"));
        assert!(!m.has_output("Bids"));
        assert_eq!(m.state_names().count(), 0);
        assert!(m.combined_script().contains("GROUP Bids ALL"));
    }
}
