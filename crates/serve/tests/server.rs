//! End-to-end tests for lipstick-serve: concurrent reads over both
//! protocols, plan-keyed caching, epoch invalidation under interleaved
//! writes, and paged/resident agreement.

use std::collections::HashMap;

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::Session;
use lipstick_serve::client::{http_get_explain, http_post_query};
use lipstick_serve::{Client, Reply, Server, ServerConfig};
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::dealers::{self, DealersParams};

fn dealers_graph() -> ProvGraph {
    let params = DealersParams {
        num_cars: 24,
        num_exec: 2,
        seed: 7,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("dealers run");
    tracker.finish()
}

fn temp_log(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lipstick-serve-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_graph_v2(&dealers_graph(), &path).unwrap();
    path
}

/// Drop the backend-dependent "(visited N)" cost figure so paged and
/// resident renderings compare on substance.
fn strip_visited(s: &str) -> String {
    match (s.find("(visited "), s.find("):")) {
        (Some(a), Some(b)) if a < b => format!("{}{}", &s[..a], &s[b + 1..]),
        _ => s.to_string(),
    }
}

fn serve_paged(name: &str, workers: usize) -> lipstick_serve::ServerHandle {
    let session = Session::open(temp_log(name)).unwrap();
    assert!(session.is_paged());
    Server::new(
        session,
        ServerConfig {
            workers,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap()
}

#[test]
fn line_protocol_answers_statements_and_reports_cache_hits() {
    let handle = serve_paged("line.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let first = client.query("MATCH base-nodes").unwrap();
    assert!(first.is_ok(), "got {first:?}");
    assert!(!first.cache_hit());
    assert!(first.body().contains("nodes"));

    // Different spelling, same parsed statement: a cache hit with an
    // identical payload.
    let second = client.query("  match BASE-NODES ;").unwrap();
    assert!(second.cache_hit(), "normalized statement must hit");
    assert_eq!(first.body(), second.body());

    // Errors are framed, not connection-fatal.
    let err = client.query("MATCH q-nodes").unwrap();
    assert!(matches!(err, Reply::Err(_)));
    let after = client.query("STATS").unwrap();
    assert!(after.is_ok(), "connection survives an error reply");

    drop(client);
    handle.shutdown();
}

#[test]
fn concurrent_clients_agree_with_a_resident_session() {
    let path = temp_log("agree.lpstk");
    let graph = dealers_graph();
    let roots = graph.top_fanout_nodes(3);
    let handle = serve_paged("agree.lpstk", 4);

    // Exact expected payloads come from a paged session (the server's
    // backend); a resident session must agree on everything except the
    // backend-dependent visited-cost figure.
    let paged = Session::open(&path).unwrap();
    let mut resident = Session::load(&path).unwrap();
    let mut stmts = vec![
        "MATCH base-nodes".to_string(),
        "MATCH m-nodes WHERE execution < 1".to_string(),
        "MATCH nodes WHERE execution >= 1".to_string(),
    ];
    for r in &roots {
        stmts.push(format!("WHY #{}", r.0));
        stmts.push(format!("DESCENDANTS OF #{} DEPTH 2", r.0));
        stmts.push(format!("EVAL #{} IN counting", r.0));
        stmts.push(format!("DEPENDS(#{}, #{})", roots[0].0, r.0));
    }
    let expected: HashMap<String, String> = stmts
        .iter()
        .map(|s| (s.clone(), paged.run_read(s).unwrap().to_string()))
        .collect();
    for stmt in &stmts {
        assert_eq!(
            strip_visited(&expected[stmt]),
            strip_visited(&resident.run_one(stmt).unwrap().to_string()),
            "paged and resident answers must agree for {stmt}"
        );
    }

    std::thread::scope(|scope| {
        for _ in 0..6 {
            let stmts = &stmts;
            let expected = &expected;
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..3 {
                    for stmt in stmts {
                        let reply = client.query(stmt).unwrap();
                        assert!(reply.is_ok(), "{stmt}: {reply:?}");
                        assert_eq!(
                            reply.body(),
                            expected[stmt],
                            "paged server answer diverged for {stmt}"
                        );
                    }
                }
            });
        }
    });
    let (hits, misses) = handle.cache_stats();
    assert!(hits > 0, "repeated statements must hit the cache");
    assert!(misses >= stmts.len() as u64);
    handle.shutdown();
}

#[test]
fn epoch_bump_invalidates_cached_results() {
    let handle = serve_paged("epoch.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let before = client.query("MATCH base-nodes").unwrap();
    let hit = client.query("MATCH base-nodes").unwrap();
    assert!(hit.cache_hit());
    assert_eq!(before.epoch(), Some(0));

    // Find a base token to delete: WHY on any base node, or just
    // delete by id from the known graph shape.
    let graph = dealers_graph();
    let victim = graph
        .iter_visible()
        .find(|(_, n)| matches!(n.kind, lipstick_core::NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .unwrap();
    let del = client
        .query(&format!("DELETE #{} PROPAGATE", victim.0))
        .unwrap();
    assert!(del.is_ok(), "{del:?}");
    assert_eq!(del.epoch(), Some(1), "mutation bumps the epoch");

    let after = client.query("MATCH base-nodes").unwrap();
    assert!(
        !after.cache_hit(),
        "epoch bump must invalidate the cached result"
    );
    assert_eq!(after.epoch(), Some(1));
    assert_ne!(
        before.body(),
        after.body(),
        "the deleted base node must be gone from the new answer"
    );

    // The new answer caches under the new epoch.
    let warm = client.query("MATCH base-nodes").unwrap();
    assert!(warm.cache_hit());
    assert_eq!(warm.body(), after.body());

    drop(client);
    handle.shutdown();
}

/// N reader threads hammer one statement while a writer interleaves a
/// `DELETE PROPAGATE`. Every reply must carry the answer that is
/// correct *for the epoch it reports* — a cached result served across
/// the epoch bump would pair epoch 1 with the pre-delete answer (or
/// report epoch 0 after observing the post-delete answer).
#[test]
fn cached_results_are_never_served_across_an_epoch_bump() {
    let path = temp_log("race.lpstk");
    let handle = serve_paged("race.lpstk", 6);

    // Mirror the server's lifecycle exactly: a paged session answers
    // the pre-delete reads, the DELETE promotes it to resident, and the
    // resident session answers the post-delete reads.
    let mut mirror = Session::open(&path).unwrap();
    let stmt = "MATCH base-nodes";
    let before = mirror.run_one(stmt).unwrap().to_string();
    let graph = dealers_graph();
    let victim = graph
        .iter_visible()
        .find(|(_, n)| matches!(n.kind, lipstick_core::NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .unwrap();
    mirror
        .run_one(&format!("DELETE #{} PROPAGATE", victim.0))
        .unwrap();
    assert!(!mirror.is_paged());
    let after = mirror.run_one(stmt).unwrap().to_string();
    assert_ne!(before, after);

    std::thread::scope(|scope| {
        for _ in 0..5 {
            let addr = handle.addr();
            let (before, after) = (&before, &after);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..50 {
                    let reply = client.query(stmt).unwrap();
                    let Reply::Ok { epoch, body, .. } = reply else {
                        panic!("read failed: {reply:?}");
                    };
                    match epoch {
                        0 => assert_eq!(&body, before, "epoch 0 must see the pre-delete answer"),
                        1 => assert_eq!(&body, after, "epoch 1 must see the post-delete answer"),
                        other => panic!("unexpected epoch {other}"),
                    }
                }
            });
        }
        let addr = handle.addr();
        scope.spawn(move || {
            let mut writer = Client::connect(addr).unwrap();
            // Let readers warm the cache first.
            std::thread::sleep(std::time::Duration::from_millis(20));
            let del = writer
                .query(&format!("DELETE #{} PROPAGATE", victim.0))
                .unwrap();
            assert!(del.is_ok(), "{del:?}");
        });
    });
    assert_eq!(handle.epoch(), 1);
    handle.shutdown();
}

/// Shaped (grouped/ordered/limited) results through the cache, under
/// a mutating writer: every reply must carry the grouped table that is
/// correct *for the epoch it reports*. This is the serve-layer lockdown
/// for the new result shaping — a stale cached table served across the
/// epoch bump would pair the post-delete epoch with pre-delete counts.
#[test]
fn shaped_results_match_their_reported_epoch_under_writes() {
    let path = temp_log("shaped-race.lpstk");
    let handle = serve_paged("shaped-race.lpstk", 6);

    let stmts = [
        "MATCH nodes GROUP BY kind ORDER BY count DESC",
        "MATCH o-nodes GROUP BY module ORDER BY count DESC LIMIT 3",
        "COUNT(*) MATCH base-nodes",
    ];

    // Mirror the server's lifecycle: paged answers before the DELETE,
    // promoted-resident answers after.
    let mut mirror = Session::open(&path).unwrap();
    let graph = dealers_graph();
    let victim = graph
        .iter_visible()
        .find(|(_, n)| matches!(n.kind, lipstick_core::NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .unwrap();
    let before: HashMap<&str, String> = stmts
        .iter()
        .map(|s| (*s, mirror.run_one(s).unwrap().to_string()))
        .collect();
    mirror
        .run_one(&format!("DELETE #{} PROPAGATE", victim.0))
        .unwrap();
    let after: HashMap<&str, String> = stmts
        .iter()
        .map(|s| (*s, mirror.run_one(s).unwrap().to_string()))
        .collect();
    for s in &stmts {
        assert_ne!(before[s], after[s], "deletion must change {s}");
    }

    std::thread::scope(|scope| {
        for _ in 0..5 {
            let addr = handle.addr();
            let (stmts, before, after) = (&stmts, &before, &after);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..30 {
                    for stmt in stmts {
                        let reply = client.query(stmt).unwrap();
                        let Reply::Ok { epoch, body, .. } = reply else {
                            panic!("shaped read failed: {reply:?}");
                        };
                        match epoch {
                            0 => assert_eq!(&body, &before[stmt], "epoch 0: {stmt}"),
                            1 => assert_eq!(&body, &after[stmt], "epoch 1: {stmt}"),
                            other => panic!("unexpected epoch {other}"),
                        }
                    }
                }
            });
        }
        let addr = handle.addr();
        scope.spawn(move || {
            let mut writer = Client::connect(addr).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(15));
            let del = writer
                .query(&format!("DELETE #{} PROPAGATE", victim.0))
                .unwrap();
            assert!(del.is_ok(), "{del:?}");
        });
    });
    let (hits, _) = handle.cache_stats();
    assert!(hits > 0, "shaped results must be cacheable");
    assert_eq!(handle.epoch(), 1);
    handle.shutdown();
}

/// The cache key is the canonical statement rendering: spellings that
/// differ beyond case/whitespace — an omitted optional keyword, ASC
/// spelled out — share one entry.
#[test]
fn canonical_cache_key_normalizes_equivalent_spellings() {
    let handle = serve_paged("canon.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let graph = dealers_graph();
    let root = graph.top_fanout_nodes(1)[0];
    let first = client
        .query(&format!("ANCESTORS OF #{} DEPTH 2", root.0))
        .unwrap();
    assert!(first.is_ok(), "{first:?}");
    assert!(!first.cache_hit());
    // `OF` is optional; the parsed statement is the same.
    let second = client
        .query(&format!("ancestors #{} depth 2", root.0))
        .unwrap();
    assert!(second.cache_hit(), "optional-keyword spelling must hit");
    assert_eq!(first.body(), second.body());

    let first = client
        .query("MATCH m-nodes ORDER BY execution DESC LIMIT 4")
        .unwrap();
    assert!(!first.cache_hit());
    let second = client
        .query("match m-nodes order by execution DESC limit 4;")
        .unwrap();
    assert!(second.cache_hit());
    assert_eq!(first.body(), second.body());

    drop(client);
    handle.shutdown();
}

#[test]
fn http_shim_serves_query_and_explain() {
    let handle = serve_paged("http.lpstk", 2);
    let addr = handle.addr();

    let (status, body) = http_post_query(addr, "MATCH base-nodes").unwrap();
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains(r#""ok":true"#), "{body}");
    assert!(body.contains(r#""cache_hit":false"#), "{body}");
    assert!(body.contains(r#""type":"nodes""#), "{body}");

    // Same statement over HTTP shares the line protocol's cache.
    let (_, body2) = http_post_query(addr, "match base-nodes;").unwrap();
    assert!(body2.contains(r#""cache_hit":true"#), "{body2}");

    let (status, body) = http_get_explain(addr, "MATCH+base-nodes").unwrap();
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains(r#""plan":"#), "{body}");
    assert!(
        body.contains("postings scan"),
        "paged plan expected: {body}"
    );

    let (status, body) = http_post_query(addr, "MATCH q-nodes").unwrap();
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains(r#""ok":false"#), "{body}");

    let (status, _) = lipstick_serve::client::http_get_explain(addr, "").unwrap();
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    handle.shutdown();
}

#[test]
fn paged_server_stays_paged_under_reads_and_promotes_on_write() {
    let handle = serve_paged("promote.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    for stmt in ["MATCH base-nodes", "STATS", "EXPLAIN MATCH m-nodes"] {
        assert!(client.query(stmt).unwrap().is_ok());
    }
    // STATS on a paged backend names the paged log.
    let stats = client.query("STATS").unwrap();
    assert!(stats.body().contains("paged log"), "{stats:?}");

    // A zoom promotes the backend; subsequent STATS is resident-form.
    let graph = dealers_graph();
    let module = graph.invocations()[0].module.clone();
    let zoom = client.query(&format!("ZOOM OUT TO {module}")).unwrap();
    assert!(zoom.is_ok(), "{zoom:?}");
    let stats = client.query("STATS").unwrap();
    assert!(
        !stats.body().contains("paged log"),
        "promoted session must report resident stats: {stats:?}"
    );

    drop(client);
    handle.shutdown();
}

#[test]
fn failed_mutation_that_promotes_still_bumps_the_epoch() {
    let handle = serve_paged("failmut.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let before = client.query("MATCH base-nodes").unwrap();
    assert_eq!(before.epoch(), Some(0));

    // The zoom fails (no such module) — but mutating statements promote
    // the paged backend before executing, and a resident backend
    // renders different visited-cost figures. The epoch must move so
    // the paged-era cache entry is never served for the new backend.
    let err = client.query("ZOOM OUT TO NoSuchModule").unwrap();
    assert!(matches!(err, Reply::Err(_)), "{err:?}");

    let after = client.query("MATCH base-nodes").unwrap();
    assert!(
        !after.cache_hit(),
        "promotion must invalidate paged-era cache entries"
    );
    assert_eq!(after.epoch(), Some(1), "promotion bumps the epoch");

    // A failed mutation on an already resident session changes nothing
    // and must not bump.
    let err = client.query("ZOOM OUT TO NoSuchModule").unwrap();
    assert!(matches!(err, Reply::Err(_)));
    let warm = client.query("MATCH base-nodes").unwrap();
    assert!(warm.cache_hit(), "nothing changed; the cache stays warm");
    assert_eq!(warm.epoch(), Some(1));

    drop(client);
    handle.shutdown();
}

/// The reach index now survives mutations (repaired in place), so a
/// served session keeps answering `ANCESTORS`/`DESCENDANTS` from the
/// closure across `DELETE PROPAGATE` — while the epoch bump still
/// invalidates every result cached against the pre-mutation graph.
#[test]
fn reach_index_survives_mutations_behind_the_cache() {
    // Pick a victim and a query root that survives the victim's
    // deletion cone (with ancestors left to report), using a local
    // oracle copy of the graph the server is serving.
    let g = dealers_graph();
    let victim = lipstick_core::NodeId(0);
    let (g2, _) = lipstick_core::query::propagate_deletion(&g, victim).unwrap();
    let root = g2
        .iter_visible()
        .find(|(_, n)| n.preds().iter().any(|p| g2.node(*p).is_visible()))
        .map(|(id, _)| id)
        .expect("a surviving node with visible ancestors");
    let ancestors_stmt = format!("ANCESTORS OF #{}", root.0);
    let encoded_stmt = format!("ANCESTORS+OF+%23{}", root.0);

    let handle = serve_paged("index-epoch.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let built = client.query("BUILD INDEX").unwrap();
    assert!(built.is_ok(), "got {built:?}");
    let epoch_after_build = handle.epoch();

    let (_, explain) = http_get_explain(handle.addr(), &encoded_stmt).unwrap();
    assert!(
        explain.contains("reach-index lookup") && explain.contains("ancestor closure"),
        "indexed upward plan expected, got: {explain}"
    );

    let before = client.query(&ancestors_stmt).unwrap();
    assert!(before.is_ok(), "got {before:?}");
    let cached = client.query(&ancestors_stmt).unwrap();
    assert!(cached.cache_hit(), "second read must come from cache");

    // Mutate: epoch bumps, cache entries die, but the index is
    // repaired rather than dropped.
    let del = client
        .query(&format!("DELETE #{} PROPAGATE", victim.0))
        .unwrap();
    assert!(del.is_ok(), "got {del:?}");
    assert_eq!(handle.epoch(), epoch_after_build + 1);

    let (_, explain) = http_get_explain(handle.addr(), &encoded_stmt).unwrap();
    assert!(
        explain.contains("reach-index lookup"),
        "index must survive the mutation, got: {explain}"
    );
    assert!(!explain.contains("bfs"), "got: {explain}");

    // The post-mutation answer is freshly computed (no stale hit) and
    // matches a resident oracle replaying the same statements.
    let after = client.query(&ancestors_stmt).unwrap();
    assert!(after.is_ok() && !after.cache_hit());
    let mut oracle = Session::new(g);
    oracle.run_one("BUILD INDEX").unwrap();
    oracle
        .run_one(&format!("DELETE #{} PROPAGATE", victim.0))
        .unwrap();
    let expect = oracle.run_one(&ancestors_stmt).unwrap().to_string();
    assert_eq!(strip_visited(after.body()), strip_visited(&expect));

    drop(client);
    handle.shutdown();
}

/// Six clients hammer queries and scrape `GET /metrics` while a writer
/// mutates mid-run: every scrape must be valid Prometheus text, and the
/// serve counters must read monotonically within each scraping thread.
#[test]
fn metrics_endpoint_stays_valid_and_monotonic_under_concurrent_load() {
    use lipstick_core::obs::{parse_plain_samples, validate_prometheus_text};

    // Each scraper pins one persistent line connection (6) and the
    // writer another (7); every `/metrics` scrape is an extra one-shot
    // connection that needs a *free* worker, so the pool must be larger
    // than the persistent population or the scrapes deadlock the test.
    let handle = serve_paged("metrics.lpstk", 14);
    let addr = handle.addr();
    let graph = dealers_graph();
    let victim = graph
        .iter_visible()
        .find(|(_, n)| matches!(n.kind, lipstick_core::NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .unwrap();

    let monotone_keys = [
        "lipstick_serve_queries_total",
        "lipstick_serve_connections_total",
        "lipstick_serve_mutations_total",
        "lipstick_proql_statements_total",
    ];
    std::thread::scope(|scope| {
        for t in 0..6 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last: HashMap<String, f64> = HashMap::new();
                for i in 0..20 {
                    let stmt = if i % 2 == 0 {
                        "MATCH base-nodes"
                    } else {
                        "MATCH m-nodes"
                    };
                    assert!(client.query(stmt).unwrap().is_ok());
                    let (status, text) = lipstick_serve::client::http_get(addr, "/metrics")
                        .unwrap_or_else(|e| panic!("thread {t} scrape {i}: {e}"));
                    assert_eq!(status, "HTTP/1.1 200 OK");
                    validate_prometheus_text(&text)
                        .unwrap_or_else(|e| panic!("invalid exposition (thread {t}): {e}\n{text}"));
                    let samples = parse_plain_samples(&text);
                    for key in monotone_keys {
                        let now = *samples
                            .get(key)
                            .unwrap_or_else(|| panic!("{key} missing from scrape"));
                        if let Some(prev) = last.get(key) {
                            assert!(now >= *prev, "{key} went backwards: {prev} -> {now}");
                        }
                        last.insert(key.to_string(), now);
                    }
                }
            });
        }
        scope.spawn(move || {
            let mut writer = Client::connect(addr).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(10));
            let del = writer
                .query(&format!("DELETE #{} PROPAGATE", victim.0))
                .unwrap();
            assert!(del.is_ok(), "{del:?}");
        });
    });
    handle.shutdown();
}

/// The OK header carries `time_us`/`reads` trailers; slow reads land in
/// the ring with their full trace, servable as JSON via `GET /slow`.
#[test]
fn timing_trailers_and_slow_query_log() {
    let session = Session::open(temp_log("slowlog.lpstk")).unwrap();
    let handle = Server::new(
        session,
        ServerConfig {
            workers: 2,
            cache_capacity: 64,
            slow_threshold_us: 0, // record every traced read
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let miss = client.query("MATCH base-nodes").unwrap();
    assert!(miss.is_ok(), "{miss:?}");
    assert!(
        miss.reads().unwrap() > 0,
        "an uncached paged read must charge record decodes: {miss:?}"
    );
    let hit = client.query("MATCH base-nodes").unwrap();
    assert!(hit.cache_hit());
    assert_eq!(hit.reads(), Some(0), "a cache hit decodes nothing");

    // EXPLAIN ANALYZE is a measurement: it never comes from the cache.
    let first = client.query("EXPLAIN ANALYZE MATCH base-nodes").unwrap();
    assert!(first.body().contains("actuals:"), "{first:?}");
    let second = client.query("EXPLAIN ANALYZE MATCH base-nodes").unwrap();
    assert!(
        !second.cache_hit(),
        "measurements must not be replayed from the cache"
    );

    assert!(handle.slow_log_len() > 0, "threshold 0 records every read");
    let (status, body) = lipstick_serve::client::http_get(handle.addr(), "/slow?n=5").unwrap();
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains(r#""ok":true"#), "{body}");
    assert!(
        body.contains(r#""stmt":"MATCH base-nodes""#),
        "slow entries carry the canonical statement: {body}"
    );
    assert!(
        body.contains(r#""trace":["#) && body.contains(r#""label":"#),
        "slow entries carry the full span trace: {body}"
    );

    drop(client);
    handle.shutdown();
}

/// `STATS` bypasses the cache and reports the server's own counters
/// alongside the session's graph statistics.
#[test]
fn stats_appends_server_lines_and_never_caches() {
    let handle = serve_paged("stats-lines.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let first = client.query("STATS").unwrap();
    assert!(first.is_ok(), "{first:?}");
    assert!(first.body().contains("paged log"), "{first:?}");
    assert!(first.body().contains("server: epoch=0"), "{first:?}");
    assert!(first.body().contains("server: cache hits="), "{first:?}");

    let again = client.query("STATS").unwrap();
    assert!(!again.cache_hit(), "STATS must report live counters");
    assert!(
        again.body().contains("server: epoch=0 queries=2"),
        "the second STATS sees its own predecessor counted: {again:?}"
    );

    drop(client);
    handle.shutdown();
}

#[test]
fn read_only_statements_do_not_bump_the_epoch() {
    let handle = serve_paged("readonly.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    for stmt in [
        "MATCH base-nodes",
        "STATS",
        "EXPLAIN DELETE #0 PROPAGATE",
        "MATCH base-nodes UNION MATCH m-nodes",
    ] {
        let reply = client.query(stmt).unwrap();
        assert!(reply.is_ok(), "{stmt}: {reply:?}");
        assert_eq!(reply.epoch(), Some(0), "{stmt}");
    }
    assert_eq!(handle.epoch(), 0);
    drop(client);
    handle.shutdown();
}

/// Acceptance: the heap-byte gauges on `GET /metrics` and the memory
/// breakdown inside `STATS` are two views of the same accounting — the
/// sums must agree within 10%.
///
/// The registry is process-global and other tests' servers refresh the
/// same gauges concurrently, so the comparison retries a few times to
/// catch a window where this server was the last writer.
#[test]
fn metrics_heap_gauges_agree_with_stats_memory_breakdown() {
    use lipstick_core::obs::parse_plain_samples;

    const HEAP_GAUGES: [&str; 5] = [
        "lipstick_core_graph_heap_bytes",
        "lipstick_core_reach_heap_bytes",
        "lipstick_storage_paged_log_heap_bytes",
        "lipstick_storage_fault_cache_heap_bytes",
        "lipstick_serve_cache_heap_bytes",
    ];

    let handle = serve_paged("memgauges.lpstk", 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    // Fault in records and populate the result cache so the paged and
    // serve_cache components are non-trivial.
    for stmt in [
        "MATCH base-nodes",
        "MATCH m-nodes WHERE execution < 1",
        "COUNT(*) MATCH base-nodes",
    ] {
        assert!(client.query(stmt).unwrap().is_ok(), "{stmt}");
    }

    let mut last = (0.0, 0.0);
    let mut agreed = false;
    for _ in 0..5 {
        // STATS: sum the per-component lines (dotted names); the
        // `memory total=` line is the session side only, so re-derive
        // the full sum from the components (which include serve_cache).
        let stats = client.query("STATS").unwrap();
        let stats_sum: f64 = stats
            .body()
            .lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("memory ")?;
                let (name, bytes) = rest.split_once('=')?;
                if !name.contains('.') {
                    return None; // the total line, not a component
                }
                bytes.split_whitespace().next()?.parse::<f64>().ok()
            })
            .sum();
        assert!(stats_sum > 0.0, "STATS must break memory down: {stats:?}");

        // /metrics: the scrape refreshes the gauges from the live
        // session before rendering.
        let (status, text) = lipstick_serve::client::http_get(handle.addr(), "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        let samples = parse_plain_samples(&text);
        let gauge_sum: f64 = HEAP_GAUGES
            .iter()
            .map(|name| {
                *samples
                    .get(*name)
                    .unwrap_or_else(|| panic!("/metrics must export {name}"))
            })
            .sum();

        last = (gauge_sum, stats_sum);
        if (gauge_sum - stats_sum).abs() <= 0.10 * stats_sum {
            agreed = true;
            break;
        }
    }
    assert!(
        agreed,
        "heap gauges ({}) and STATS memory components ({}) must agree within 10%",
        last.0, last.1
    );

    drop(client);
    handle.shutdown();
}

fn serve_append(name: &str, workers: usize, compact_every: u64) -> lipstick_serve::ServerHandle {
    let session = Session::open_append(temp_log(name)).unwrap();
    assert!(session.is_append());
    Server::new(
        session,
        ServerConfig {
            workers,
            cache_capacity: 64,
            compact_every,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap()
}

/// Distinct base-tuple victims for concurrent deletion: base tuples are
/// sources, so no victim sits inside another victim's deletion cone and
/// every `DELETE … PROPAGATE` must succeed regardless of interleaving.
fn base_victims(n: usize) -> Vec<lipstick_core::NodeId> {
    dealers_graph()
        .iter_visible()
        .filter(|(_, node)| matches!(node.kind, lipstick_core::NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .take(n)
        .collect()
}

/// The append-backend acceptance test: concurrent writers group-commit
/// durable tail records (no promotion) while readers stream queries and
/// a `COMPACT` is forced mid-run. Three invariants:
///
/// 1. **no lost writes** — every victim reads back as deleted,
/// 2. **payload matches reported epoch** — across every reader, two
///    replies stamped with the same epoch carry identical bodies (the
///    epoch names one graph version, batched or not), and
/// 3. **compaction is invisible** — the post-compaction answer equals
///    the pre-compaction answer byte for byte.
#[test]
fn append_server_group_commits_concurrent_writers_across_compact() {
    // 4 writers + 3 readers + 1 compactor pin persistent connections;
    // the pool must exceed that or latecomers starve.
    let handle = serve_append("append-race.lpstk", 12, 0);
    let addr = handle.addr();
    let victims = base_victims(8);
    assert_eq!(victims.len(), 8, "the dealers graph has 8+ base tuples");

    let stmt = "COUNT(*) MATCH nodes";
    let observed: Vec<(u64, String)> = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            readers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut seen = Vec::new();
                for _ in 0..30 {
                    let reply = client.query(stmt).unwrap();
                    let Reply::Ok { epoch, body, .. } = reply else {
                        panic!("read failed: {reply:?}");
                    };
                    seen.push((epoch, body));
                }
                seen
            }));
        }
        for pair in victims.chunks(2) {
            let pair = pair.to_vec();
            scope.spawn(move || {
                let mut writer = Client::connect(addr).unwrap();
                for victim in pair {
                    let del = writer
                        .query(&format!("DELETE #{} PROPAGATE", victim.0))
                        .unwrap();
                    assert!(del.is_ok(), "append-backed delete failed: {del:?}");
                }
            });
        }
        scope.spawn(move || {
            let mut compactor = Client::connect(addr).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(10));
            let reply = compactor.query("COMPACT").unwrap();
            assert!(reply.is_ok(), "mid-run COMPACT failed: {reply:?}");
        });
        readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect()
    });

    // One epoch, one answer — a cached result served across a bump (or
    // a half-applied batch leaking out) would violate this.
    let mut by_epoch: HashMap<u64, &String> = HashMap::new();
    for (epoch, body) in &observed {
        match by_epoch.get(epoch) {
            Some(prev) => assert_eq!(*prev, body, "epoch {epoch} answered two different payloads"),
            None => {
                by_epoch.insert(*epoch, body);
            }
        }
    }

    let mut client = Client::connect(addr).unwrap();
    for victim in &victims {
        // A deleted node no longer resolves — same rendering as the
        // resident planner gives for an invisible reference.
        let why = client.query(&format!("WHY #{}", victim.0)).unwrap();
        let Reply::Err(message) = why else {
            panic!("lost write: victim #{} still visible: {why:?}", victim.0);
        };
        assert_eq!(message, format!("unknown node reference #{}", victim.0));
    }

    // Compaction preserves ids and visibility: the answer after folding
    // the remaining tail must equal the answer before, even though the
    // client-issued COMPACT conservatively bumps the epoch.
    let before = client.query(stmt).unwrap();
    let compacted = client.query("COMPACT").unwrap();
    assert!(compacted.is_ok(), "{compacted:?}");
    let after = client.query(stmt).unwrap();
    assert_eq!(before.body(), after.body());
    assert_eq!(after.epoch(), Some(handle.epoch()));

    drop(client);
    handle.shutdown();
}

/// `ServerConfig::compact_every`: the batch leader folds the tail into
/// a fresh sealed segment after N successful mutations, so a manual
/// `COMPACT` right after finds nothing left.
#[test]
fn append_server_auto_compacts_after_n_mutations() {
    let handle = serve_append("append-auto.lpstk", 2, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    let victims = base_victims(2);

    for victim in &victims {
        let del = client
            .query(&format!("DELETE #{} PROPAGATE", victim.0))
            .unwrap();
        assert!(del.is_ok(), "{del:?}");
    }
    let manual = client.query("COMPACT").unwrap();
    assert!(manual.is_ok(), "{manual:?}");
    assert_eq!(
        manual.body(),
        "nothing to compact (no tail segment)",
        "auto-compaction must already have folded the tail"
    );

    drop(client);
    handle.shutdown();
}

/// The memory-accounting acceptance for the append backend: with a
/// **non-empty tail** (post-mutation, pre-compaction), the heap gauges
/// on `GET /metrics` and the `STATS` memory components must still sum
/// to the same figure — the tail overlay is accounted, not leaked — and
/// uncached reads must keep charging record decodes to the `reads`
/// trailer after mutations and after compaction.
#[test]
fn append_heap_gauges_agree_with_stats_with_non_empty_tail() {
    use lipstick_core::obs::parse_plain_samples;

    const HEAP_GAUGES: [&str; 5] = [
        "lipstick_core_graph_heap_bytes",
        "lipstick_core_reach_heap_bytes",
        "lipstick_storage_paged_log_heap_bytes",
        "lipstick_storage_fault_cache_heap_bytes",
        "lipstick_serve_cache_heap_bytes",
    ];

    let handle = serve_append("append-mem.lpstk", 2, 0);
    let mut client = Client::connect(handle.addr()).unwrap();

    let cold = client.query("MATCH base-nodes").unwrap();
    assert!(cold.is_ok(), "{cold:?}");
    assert!(
        cold.reads().unwrap() > 0,
        "an uncached append-backed read must charge record decodes: {cold:?}"
    );
    let victim = base_victims(1)[0];
    let del = client
        .query(&format!("DELETE #{} PROPAGATE", victim.0))
        .unwrap();
    assert!(del.is_ok(), "{del:?}");

    let mut last = (0.0, 0.0);
    let mut agreed = false;
    for _ in 0..5 {
        let stats = client.query("STATS").unwrap();
        let stats_sum: f64 = stats
            .body()
            .lines()
            .filter_map(|line| {
                let rest = line.trim().strip_prefix("memory ")?;
                let (name, bytes) = rest.split_once('=')?;
                if !name.contains('.') {
                    return None; // the total line, not a component
                }
                bytes.split_whitespace().next()?.parse::<f64>().ok()
            })
            .sum();
        assert!(stats_sum > 0.0, "STATS must break memory down: {stats:?}");

        let (status, text) = lipstick_serve::client::http_get(handle.addr(), "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        let samples = parse_plain_samples(&text);
        let gauge_sum: f64 = HEAP_GAUGES
            .iter()
            .map(|name| {
                *samples
                    .get(*name)
                    .unwrap_or_else(|| panic!("/metrics must export {name}"))
            })
            .sum();

        last = (gauge_sum, stats_sum);
        if (gauge_sum - stats_sum).abs() <= 0.10 * stats_sum {
            agreed = true;
            break;
        }
    }
    assert!(
        agreed,
        "append-backend heap gauges ({}) and STATS memory components ({}) must agree within 10%",
        last.0, last.1
    );

    // Post-compaction the store reopens from the fresh sealed segment;
    // uncached reads still fault records in and charge them.
    let compacted = client.query("COMPACT").unwrap();
    assert!(compacted.is_ok(), "{compacted:?}");
    let warm = client.query("MATCH m-nodes").unwrap();
    assert!(warm.is_ok() && !warm.cache_hit(), "{warm:?}");
    assert!(
        warm.reads().unwrap() > 0,
        "post-compaction reads must keep charging decodes: {warm:?}"
    );

    drop(client);
    handle.shutdown();
}
