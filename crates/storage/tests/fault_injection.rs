//! Crash/error-injection harness for the storage IO seam.
//!
//! A scripted append/COMPACT workload runs over [`FaultIo`]'s simulated
//! disk. A clean pass counts every IO call the workload performs; then
//! every op index is replayed twice — once failing that call with an
//! errno, once crashing the disk at it — asserting, at every single
//! failure point:
//!
//! - the errored mutation returns `Err` without poisoning the in-memory
//!   session (its visible-graph signature is unchanged, and retrying
//!   the same step succeeds and converges with the clean run);
//! - after a crash, reopen always succeeds and the recovered store
//!   matches the state after the last *acknowledged* commit — a
//!   committed prefix, never a torn or mixed state;
//! - `records_read` stays a coherent, monotonic gauge and the sealed
//!   base re-verifies.
//!
//! A dedicated test drives the crash clock through COMPACT's own IO
//! steps (temp write, sync, rename, tail unlink) proving the reopened
//! store equals the pre- or post-compaction state, never a hybrid. A
//! final test runs ProQL sessions (via the shared `testgen` script
//! hook) over the simulated disk, differential-checked against a
//! resident session.
//!
//! `FAULT_POINTS=<n>` caps how many op indices each enumeration test
//! replays (CI pins a budget); unset, every op is exercised.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use lipstick_core::graph::GraphTracker;
use lipstick_core::query::plan_zoom_out;
use lipstick_core::store::{compute_deletion_store, GraphStore};
use lipstick_core::{NodeId, ProvGraph, Tracker};
use lipstick_proql::{testgen, ProqlError, QueryOutput, Session};
use lipstick_storage::{write_graph_v2_io, AppendLog, FaultIo, FaultKind, StorageIo};

/// Visible labelled nodes + visible edges — the cross-backend signature
/// the recovery checks compare (same as the torn-write suite).
type StoreSignature = (Vec<(u32, String)>, Vec<(u32, u32)>);

fn store_signature<S: GraphStore + ?Sized>(s: &S) -> StoreSignature {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    for i in 0..s.node_count() {
        let id = NodeId(i as u32);
        if !s.is_visible(id) {
            continue;
        }
        nodes.push((id.0, s.kind_of(id).label()));
        for t in s.succs_of(id) {
            if s.is_visible(t) {
                edges.push((id.0, t.0));
            }
        }
    }
    edges.sort_unstable();
    (nodes, edges)
}

const MODULES: [&str; 3] = ["Mload", "Mjoin", "Magg"];

/// Deterministic seed workflow: one run of each module chained off
/// shared base tuples.
fn seed_graph() -> ProvGraph {
    let mut t = GraphTracker::new();
    let mut feed: Vec<_> = (0..3).map(|i| t.base(&format!("t0_{i}"))).collect();
    for module in MODULES {
        t.begin_invocation(module, 0);
        let tuple = t.plus(&feed.clone());
        let input = t.module_input(tuple);
        let x = t.times(&[input]);
        let out = t.module_output(x, &[]);
        t.end_invocation();
        feed.push(out);
    }
    t.plus(&feed.clone());
    t.finish()
}

/// Deterministic appended fragment for execution `n`.
fn fragment(n: u32) -> ProvGraph {
    let mut t = GraphTracker::new();
    let a = t.base(&format!("f{n}_a"));
    let b = t.base(&format!("f{n}_b"));
    t.begin_invocation("Mjoin", n);
    let ab = t.times(&[a, b]);
    let i = t.module_input(ab);
    let o = t.module_output(i, &[]);
    t.end_invocation();
    t.plus(&[o]);
    t.finish()
}

const STEPS: usize = 9;

/// One step of the scripted workload. Deterministic given the store's
/// state, so a replay that keeps state converged with the clean run
/// (by retrying failed steps) issues the identical IO sequence.
fn script_step(log: &mut AppendLog, step: usize) -> lipstick_storage::Result<()> {
    match step {
        0 => log.commit_fragment(&fragment(1)).map(|_| ()),
        1 | 7 => {
            let root = (0..log.node_count() as u32)
                .map(NodeId)
                .filter(|&id| log.is_visible(id))
                .nth(4)
                .expect("workload graph has at least five visible nodes");
            let cone = compute_deletion_store(&*log, root)
                .expect("deletion cone over an in-memory overlay cannot fault");
            log.commit_tombstones(&cone)
        }
        2 => {
            // Planning is pure in-memory; only the commit does IO, so a
            // retried step re-plans against the identical state.
            let plans = plan_zoom_out(&*log, &["Mjoin"], &[], log.stash_count())
                .expect("Mjoin ran in the seed workflow");
            log.commit_zoom_out(plans).map(|_| ())
        }
        3 => log.commit_fragment(&fragment(2)).map(|_| ()),
        4 => log.commit_zoom_in(&["Mjoin".to_string()]).map(|_| ()),
        5 | 8 => log.compact(),
        6 => log.commit_fragment(&fragment(3)).map(|_| ()),
        _ => unreachable!("script has {STEPS} steps"),
    }
}

/// Write the sealed seed segment onto a fresh simulated disk and sync
/// it, returning the disk and the ops consumed by seeding (the fault
/// clock starts after them).
fn seeded_disk(path: &Path) -> (FaultIo, u64) {
    let io = FaultIo::new();
    write_graph_v2_io(&seed_graph(), path, &io).expect("seeding a fresh simulated disk");
    io.sync(path).expect("seeding sync");
    let ops = io.ops();
    (io, ops)
}

fn log_path() -> PathBuf {
    // Purely a key into the simulated disk — nothing in this harness
    // touches the real filesystem.
    PathBuf::from("/simulated/graph.lpstk")
}

fn fault_budget(total: u64) -> usize {
    std::env::var("FAULT_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(total) as usize
}

/// Clean pass: run the script, record the signature after every step
/// and the total IO ops the workload (open included) performs.
fn clean_run() -> (Vec<StoreSignature>, u64) {
    let path = log_path();
    let (io, ops0) = seeded_disk(&path);
    let mut log = AppendLog::open_with_io(&path, Arc::new(io.clone())).expect("clean open");
    let mut sigs = vec![store_signature(&log)];
    let mut reads = log.records_read();
    for step in 0..STEPS {
        script_step(&mut log, step).expect("clean run has no faults");
        sigs.push(store_signature(&log));
        // The decode gauge never runs backwards, across COMPACT included.
        assert!(log.records_read() >= reads, "records_read regressed");
        reads = log.records_read();
    }
    (sigs, io.ops() - ops0)
}

#[test]
fn every_io_error_point_leaves_the_store_usable_and_convergent() {
    let (clean_sigs, total_ops) = clean_run();
    assert!(total_ops > 30, "script should exercise many IO sites");

    for k in (0..total_ops).take(fault_budget(total_ops)) {
        // Alternate ENOSPC and EIO so both errnos surface.
        let errno = if k % 2 == 0 { 28 } else { 5 };
        let path = log_path();
        let (io, ops0) = seeded_disk(&path);
        io.set_fault(ops0 + k, FaultKind::Errno(errno));
        let shared: Arc<dyn StorageIo> = Arc::new(io.clone());

        // Open may absorb the fault; it must then succeed on retry.
        let mut log = match AppendLog::open_with_io(&path, shared.clone()) {
            Ok(log) => log,
            Err(_) => AppendLog::open_with_io(&path, shared.clone())
                .unwrap_or_else(|e| panic!("op {k}: reopen after open error failed: {e}")),
        };
        for step in 0..STEPS {
            if script_step(&mut log, step).is_err() {
                // Session not poisoned: the failed step changed nothing.
                assert_eq!(
                    store_signature(&log),
                    clean_sigs[step],
                    "op {k}: failed step {step} mutated the in-memory session"
                );
                // The fault is one-shot; the retry must land and bring
                // the run back in lockstep with the clean one.
                script_step(&mut log, step)
                    .unwrap_or_else(|e| panic!("op {k}: retry of step {step} failed: {e}"));
            }
            assert_eq!(
                store_signature(&log),
                clean_sigs[step + 1],
                "op {k}: step {step} diverged from the clean run"
            );
        }
        drop(log);

        // Whatever happened, a fresh open recovers the full final state.
        let reopened = AppendLog::open_with_io(&path, shared)
            .unwrap_or_else(|e| panic!("op {k}: final reopen failed: {e}"));
        assert_eq!(
            store_signature(&reopened),
            clean_sigs[STEPS],
            "op {k}: reopened store lost acknowledged writes"
        );
        reopened
            .verify_all()
            .unwrap_or_else(|e| panic!("op {k}: sealed base failed verification: {e}"));
        let r1 = reopened.records_read();
        let _ = store_signature(&reopened);
        assert!(
            reopened.records_read() >= r1,
            "op {k}: records_read gauge ran backwards"
        );
        assert!(
            !reopened.memory_breakdown().is_empty(),
            "op {k}: heap gauge breakdown vanished"
        );
    }
}

#[test]
fn every_crash_point_recovers_exactly_the_acked_prefix() {
    let (_, total_ops) = clean_run();

    for k in (0..total_ops).take(fault_budget(total_ops)) {
        let path = log_path();
        let (io, ops0) = seeded_disk(&path);
        io.set_fault(ops0 + k, FaultKind::Crash);
        let shared: Arc<dyn StorageIo> = Arc::new(io.clone());

        // Run until the crash surfaces, recording each acked signature.
        // If the crash fires inside open() itself, the acked state is
        // the seed graph.
        let mut acked = store_signature(&seed_graph());
        if let Ok(mut log) = AppendLog::open_with_io(&path, shared.clone()) {
            acked = store_signature(&log);
            for step in 0..STEPS {
                match script_step(&mut log, step) {
                    Ok(()) => acked = store_signature(&log),
                    Err(_) => break,
                }
            }
        }

        io.thaw();
        let recovered = AppendLog::open_with_io(&path, shared)
            .unwrap_or_else(|e| panic!("crash at op {k}: reopen failed: {e}"));
        assert_eq!(
            store_signature(&recovered),
            acked,
            "crash at op {k}: recovered state is not the acked prefix"
        );
        recovered
            .verify_all()
            .unwrap_or_else(|e| panic!("crash at op {k}: base verification failed: {e}"));
    }
}

#[test]
fn crash_during_compact_is_all_or_nothing() {
    let path = log_path();

    // Clean run up to (not including) the first COMPACT, then measure
    // the op window COMPACT occupies and the base bytes on either side.
    let (io, _) = seeded_disk(&path);
    let mut log = AppendLog::open_with_io(&path, Arc::new(io.clone())).expect("clean open");
    for step in 0..5 {
        script_step(&mut log, step).expect("clean prefix");
    }
    let sig = store_signature(&log);
    let pre_tail_records = log.tail_records();
    assert!(pre_tail_records > 0, "compact must have a tail to fold");
    let pre_base = io.contents(&path).expect("base exists");
    let compact_start = io.ops();
    log.compact().expect("clean compact");
    let compact_ops = io.ops() - compact_start;
    let post_base = io.contents(&path).expect("base exists");
    assert_ne!(pre_base, post_base, "compact rewrote the base");
    assert!(
        compact_ops >= 4,
        "compact performs at least temp-write, sync, rename, unlink"
    );
    drop(log);

    // Crash the disk at every op inside the COMPACT window: temp write,
    // temp sync, temp reopen/len, rename, tail unlink.
    for k in 0..compact_ops {
        let (io, _) = seeded_disk(&path);
        let shared: Arc<dyn StorageIo> = Arc::new(io.clone());
        let mut log = AppendLog::open_with_io(&path, shared.clone()).expect("open");
        for step in 0..5 {
            script_step(&mut log, step).expect("prefix before compact");
        }
        io.set_fault(io.ops() + k, FaultKind::Crash);
        let result = log.compact();
        drop(log);
        io.thaw();

        let base_now = io
            .contents(&path)
            .unwrap_or_else(|| panic!("compact crash at op {k}: base vanished"));
        let recovered = AppendLog::open_with_io(&path, shared)
            .unwrap_or_else(|e| panic!("compact crash at op {k}: reopen failed: {e}"));
        assert_eq!(
            store_signature(&recovered),
            sig,
            "compact crash at op {k}: visible graph changed"
        );
        let pre_state = base_now == pre_base && recovered.tail_records() == pre_tail_records;
        let post_state = base_now == post_base && recovered.tail_records() == 0;
        assert!(
            pre_state || post_state,
            "compact crash at op {k}: hybrid state (result={result:?}, \
             tail_records={}, base_matches_pre={}, base_matches_post={})",
            recovered.tail_records(),
            base_now == pre_base,
            base_now == post_base,
        );
    }
}

/// Mask the backend-dependent `(visited N)` work figure, as the
/// differential suite does: resident and paged scans count different
/// (both legitimate) costs of the same answer.
fn mask_visited(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(at) = rest.find("(visited ") {
        let tail = &rest[at + "(visited ".len()..];
        let digits = tail.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 && tail[digits..].starts_with(')') {
            out.push_str(&rest[..at]);
            out.push_str("(visited _)");
            rest = &tail[digits + 1..];
        } else {
            out.push_str(&rest[..at + "(visited ".len()]);
            rest = tail;
        }
    }
    out.push_str(rest);
    out
}

fn answer(r: Result<QueryOutput, ProqlError>) -> Result<String, String> {
    match r {
        Ok(out) => Ok(mask_visited(&out.to_string())),
        Err(e) => Err(e.to_string()),
    }
}

#[test]
fn proql_session_survives_io_errors_differentially_vs_resident() {
    let path = log_path();
    let graph = seed_graph();
    let vocab = testgen::Vocab::from_graph(&graph);

    for seed in 0..4u64 {
        let mut rng = testgen::Rng::new((0xfa << 32) | seed);
        let script = testgen::mutation_script(&vocab, &mut rng, 8);

        let (io, _) = seeded_disk(&path);
        let shared: Arc<dyn StorageIo> = Arc::new(io.clone());
        let mut append =
            Session::open_append_with_io(&path, shared.clone()).expect("open append session");
        let mut resident = Session::new(graph.clone());
        // One injected errno per run, position varying with the seed
        // (open-time faults are covered by the storage-level tests).
        io.set_fault(io.ops() + 1 + seed * 4, FaultKind::Errno(5));

        for stmt in &script {
            let mut out = append.run_stmt(stmt);
            if matches!(&out, Err(ProqlError::Storage(_))) {
                // The injected IO error: the statement was refused, the
                // session stays usable, and the one-shot fault lets the
                // retry through.
                out = append.run_stmt(stmt);
                assert!(
                    !matches!(&out, Err(ProqlError::Storage(_))),
                    "retry after injected IO error failed: {out:?}"
                );
            }
            let expect = resident.run_stmt(stmt);
            assert_eq!(
                answer(out),
                answer(expect),
                "append and resident sessions diverged"
            );
        }
        // The fault may not have fired if the script erred out early
        // semantically; it must not leak into the reopen below.
        io.clear_fault();

        // Read statements agree after the faulted mutation script...
        let mut read_rng = testgen::Rng::new(0xbeef ^ seed);
        for _ in 0..6 {
            let stmt = testgen::statement(&vocab, &mut read_rng);
            assert_eq!(
                answer(append.run_read_stmt(&stmt)),
                answer(resident.run_read_stmt(&stmt)),
                "read divergence after faulted script"
            );
        }

        // ...and every acked mutation survives a reopen.
        let tail_records = append.append_log().expect("append backend").tail_records();
        drop(append);
        let reopened = Session::open_append_with_io(&path, shared).expect("reopen");
        assert_eq!(
            reopened
                .append_log()
                .expect("append backend")
                .tail_records(),
            tail_records,
            "seed {seed}: reopen lost acknowledged records"
        );
        let mut read_rng = testgen::Rng::new(0xbeef ^ seed);
        for _ in 0..6 {
            let stmt = testgen::statement(&vocab, &mut read_rng);
            assert_eq!(
                answer(reopened.run_read_stmt(&stmt)),
                answer(resident.run_read_stmt(&stmt)),
                "seed {seed}: reopened session diverged"
            );
        }
    }
}
