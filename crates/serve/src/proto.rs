//! Wire formats: the newline-delimited line protocol and the minimal
//! HTTP/1.1 shim that share one listener.
//!
//! ## Line protocol
//!
//! One request per line — a single ProQL statement, trailing `;`
//! optional. Responses are framed by a header line:
//!
//! ```text
//! OK <payload-lines> cache_hit=<0|1> epoch=<n> time_us=<µs> reads=<n>
//! <payload line 1>
//! …
//! ERR <single-line message>
//! BUSY retry_after_ms=<ms>
//! ```
//!
//! `time_us` is the server-side wall time spent answering (cache hits
//! report the lookup time, not the original execution), and `reads` is
//! the number of backend record decodes the statement charged — 0 for
//! resident backends and cache hits. Clients that predate these
//! trailers still parse: both fields default to 0 when absent.
//!
//! The header names how many payload lines follow, so clients never
//! sniff for prompts or blank lines. Connections are persistent: a
//! client issues any number of statements before disconnecting.
//!
//! `BUSY` is overload shedding, not failure: the server's bounded
//! group-commit queue is full and the statement was **not** executed.
//! `retry_after_ms` is the server's estimate of when a retry will find
//! room (derived from recent batch drain time). Distinct from `ERR` so
//! clients can retry blindly without re-examining statement semantics.
//!
//! ## HTTP shim
//!
//! The same listener answers `POST /query` (body = one statement) and
//! `GET /explain?q=<percent-encoded statement>` with JSON bodies, one
//! request per connection (`Connection: close`). A connection is
//! classified by its first line: HTTP request lines end with an
//! `HTTP/1.x` version tag, which no ProQL statement can (statements
//! never contain `/`).

use std::fmt;
use std::io::{BufRead, Result, Write};

/// What went wrong while reading a peer's bytes: transport failure, or
/// bytes that don't follow the protocol. Typed so callers can tell a
/// dead socket from a corrupt (or hostile) peer without string
/// matching, and so the read paths never panic on malformed input.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer sent bytes that violate the framing; the message names
    /// what was expected.
    Malformed(String),
    /// The connection closed mid-frame (after a header promised more).
    UnexpectedEof(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "protocol transport error: {e}"),
            ProtoError::Malformed(what) => write!(f, "malformed protocol data: {what}"),
            ProtoError::UnexpectedEof(what) => write!(f, "connection closed {what}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Lets `?` lift protocol errors into `io::Result` call sites (the
/// client and server loops), preserving the io error kind where one
/// makes sense.
impl From<ProtoError> for std::io::Error {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => io,
            ProtoError::Malformed(what) => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, what)
            }
            ProtoError::UnexpectedEof(what) => {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, what)
            }
        }
    }
}

/// How a freshly accepted connection speaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FirstLine {
    /// HTTP request line: method, target, version.
    Http { method: String, target: String },
    /// Anything else: the line is already the first ProQL statement.
    Proql(String),
}

/// Classify a connection's first line.
pub fn classify_first_line(line: &str) -> FirstLine {
    let mut parts = line.split_whitespace();
    if let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    {
        if version.starts_with("HTTP/") && parts.next().is_none() {
            return FirstLine::Http {
                method: method.to_string(),
                target: target.to_string(),
            };
        }
    }
    FirstLine::Proql(line.to_string())
}

/// One parsed line-protocol response, as read back by clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    Ok {
        cache_hit: bool,
        epoch: u64,
        /// Server-side wall time for this response, microseconds.
        time_us: u64,
        /// Backend record decodes charged to this statement (0 on
        /// resident backends and cache hits).
        reads: u64,
        /// Payload lines, joined with `\n`.
        body: String,
    },
    Err(String),
    /// The server shed this statement: its bounded write queue was
    /// full. The statement did not execute; retry after the hint.
    Busy {
        retry_after_ms: u64,
    },
}

impl Reply {
    /// The payload, whichever arm carries it.
    pub fn body(&self) -> &str {
        match self {
            Reply::Ok { body, .. } => body,
            Reply::Err(m) => m,
            Reply::Busy { .. } => "",
        }
    }

    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok { .. })
    }

    pub fn is_busy(&self) -> bool {
        matches!(self, Reply::Busy { .. })
    }

    pub fn cache_hit(&self) -> bool {
        matches!(
            self,
            Reply::Ok {
                cache_hit: true,
                ..
            }
        )
    }

    pub fn epoch(&self) -> Option<u64> {
        match self {
            Reply::Ok { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }

    /// Server-side wall time, if the reply was a success.
    pub fn time_us(&self) -> Option<u64> {
        match self {
            Reply::Ok { time_us, .. } => Some(*time_us),
            _ => None,
        }
    }

    /// Backend record decodes charged, if the reply was a success.
    pub fn reads(&self) -> Option<u64> {
        match self {
            Reply::Ok { reads, .. } => Some(*reads),
            _ => None,
        }
    }

    /// The shed hint, if the reply was `BUSY`.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Reply::Busy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

/// Write a success response: header line, then the payload split into
/// counted lines.
pub fn write_ok(
    w: &mut impl Write,
    payload: &str,
    cache_hit: bool,
    epoch: u64,
    time_us: u64,
    reads: u64,
) -> Result<()> {
    let lines: Vec<&str> = if payload.is_empty() {
        Vec::new()
    } else {
        payload.split('\n').collect()
    };
    writeln!(
        w,
        "OK {} cache_hit={} epoch={epoch} time_us={time_us} reads={reads}",
        lines.len(),
        u8::from(cache_hit)
    )?;
    for line in lines {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Write an error response. Multi-line messages collapse onto one line
/// so the framing stays parseable.
pub fn write_err(w: &mut impl Write, message: &str) -> Result<()> {
    let flat = message.replace('\n', "; ");
    writeln!(w, "ERR {flat}")?;
    w.flush()
}

/// Write an overload-shed response. One line, no payload: the
/// statement was not executed and may be retried verbatim.
pub fn write_busy(w: &mut impl Write, retry_after_ms: u64) -> Result<()> {
    writeln!(w, "BUSY retry_after_ms={retry_after_ms}")?;
    w.flush()
}

/// Read one framed response off the wire (client side). Returns `None`
/// on clean EOF before a header line; bytes that violate the framing
/// come back as [`ProtoError::Malformed`], never a panic.
pub fn read_reply(r: &mut impl BufRead) -> std::result::Result<Option<Reply>, ProtoError> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches(['\r', '\n']);
    if let Some(msg) = header.strip_prefix("ERR ") {
        return Ok(Some(Reply::Err(msg.to_string())));
    }
    if let Some(rest) = header.strip_prefix("BUSY ") {
        let retry_after_ms = rest
            .strip_prefix("retry_after_ms=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ProtoError::Malformed(format!("BUSY header field: {rest:?}")))?;
        return Ok(Some(Reply::Busy { retry_after_ms }));
    }
    let Some(rest) = header.strip_prefix("OK ") else {
        return Err(ProtoError::Malformed(format!(
            "response header: {header:?}"
        )));
    };
    let mut fields = rest.split(' ');
    let parse_fail = |what: &str| ProtoError::Malformed(format!("OK header field: {what}"));
    let nlines: usize = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_fail("payload line count"))?;
    let cache_hit = match fields.next() {
        Some("cache_hit=1") => true,
        Some("cache_hit=0") => false,
        _ => return Err(parse_fail("cache_hit")),
    };
    let epoch: u64 = fields
        .next()
        .and_then(|s| s.strip_prefix("epoch="))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_fail("epoch"))?;
    // Timing trailers are newer than the framing: absent fields (an
    // older server) default to 0 rather than failing the parse.
    let mut time_us = 0u64;
    let mut reads = 0u64;
    for field in fields {
        if let Some(v) = field.strip_prefix("time_us=") {
            time_us = v.parse().map_err(|_| parse_fail("time_us"))?;
        } else if let Some(v) = field.strip_prefix("reads=") {
            reads = v.parse().map_err(|_| parse_fail("reads"))?;
        }
    }
    // The header is untrusted wire input: never let a declared count
    // drive the allocation (the payload lines themselves will grow the
    // vector if they actually arrive).
    let mut body_lines = Vec::with_capacity(nlines.min(1024));
    for _ in 0..nlines {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(ProtoError::UnexpectedEof("mid-payload"));
        }
        body_lines.push(line.trim_end_matches(['\r', '\n']).to_string());
    }
    Ok(Some(Reply::Ok {
        cache_hit,
        epoch,
        time_us,
        reads,
        body: body_lines.join("\n"),
    }))
}

/// Largest request body the HTTP shim accepts.
pub const MAX_HTTP_BODY: usize = 1 << 20;

/// Read HTTP headers (after the request line) and the body demanded by
/// `Content-Length`. Headers other than `Content-Length` are ignored.
/// Returns `None` when the declared body exceeds [`MAX_HTTP_BODY`] —
/// silently truncating could execute a different (valid-prefix)
/// statement than the one sent, so the caller must reject instead.
pub fn read_http_request_rest(
    r: &mut impl BufRead,
) -> std::result::Result<Option<String>, ProtoError> {
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_HTTP_BODY {
        return Ok(None);
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|_| ProtoError::UnexpectedEof("before the declared Content-Length arrived"))?;
    Ok(Some(String::from_utf8_lossy(&body).into_owned()))
}

/// Write an HTTP response with a JSON body.
pub fn write_http_json(w: &mut impl Write, status: &str, body: &str) -> Result<()> {
    write!(
        w,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    w.flush()
}

/// Write an HTTP response with a plain-text body — the Prometheus
/// `/metrics` exposition, which scrapers expect as
/// `text/plain; version=0.0.4`.
pub fn write_http_text(w: &mut impl Write, status: &str, body: &str) -> Result<()> {
    write!(
        w,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    w.flush()
}

/// Percent-decode a query-string value (`+` is a space).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h << 4 | l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_http_and_proql_first_lines() {
        assert_eq!(
            classify_first_line("POST /query HTTP/1.1"),
            FirstLine::Http {
                method: "POST".into(),
                target: "/query".into()
            }
        );
        assert_eq!(
            classify_first_line("GET /explain?q=STATS HTTP/1.0"),
            FirstLine::Http {
                method: "GET".into(),
                target: "/explain?q=STATS".into()
            }
        );
        assert_eq!(
            classify_first_line("MATCH m-nodes WHERE module = 'M';"),
            FirstLine::Proql("MATCH m-nodes WHERE module = 'M';".into())
        );
        // DEPENDS(#1, #2) has three words but no HTTP version tag.
        assert_eq!(
            classify_first_line("DEPENDS( #1, #2 )"),
            FirstLine::Proql("DEPENDS( #1, #2 )".into())
        );
    }

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn ok_reply_roundtrips() -> TestResult {
        let mut buf = Vec::new();
        write_ok(&mut buf, "line one\nline two", true, 7, 142, 9)?;
        let mut r = std::io::BufReader::new(&buf[..]);
        let reply = read_reply(&mut r)?.ok_or("missing reply")?;
        assert_eq!(
            reply,
            Reply::Ok {
                cache_hit: true,
                epoch: 7,
                time_us: 142,
                reads: 9,
                body: "line one\nline two".into()
            }
        );
        assert_eq!(read_reply(&mut r)?, None, "clean EOF");
        Ok(())
    }

    #[test]
    fn empty_payload_roundtrips() -> TestResult {
        let mut buf = Vec::new();
        write_ok(&mut buf, "", false, 0, 0, 0)?;
        let reply = read_reply(&mut std::io::BufReader::new(&buf[..]))?.ok_or("missing reply")?;
        assert_eq!(
            reply,
            Reply::Ok {
                cache_hit: false,
                epoch: 0,
                time_us: 0,
                reads: 0,
                body: String::new()
            }
        );
        Ok(())
    }

    /// A header from a pre-trailer server (no `time_us=`/`reads=`)
    /// still parses, defaulting both fields to 0.
    #[test]
    fn headers_without_timing_trailers_still_parse() -> TestResult {
        let wire = b"OK 1 cache_hit=0 epoch=3\nhello\n";
        let reply = read_reply(&mut std::io::BufReader::new(&wire[..]))?.ok_or("missing reply")?;
        assert_eq!(
            reply,
            Reply::Ok {
                cache_hit: false,
                epoch: 3,
                time_us: 0,
                reads: 0,
                body: "hello".into()
            }
        );
        Ok(())
    }

    #[test]
    fn busy_reply_roundtrips() -> TestResult {
        let mut buf = Vec::new();
        write_busy(&mut buf, 12)?;
        let mut r = std::io::BufReader::new(&buf[..]);
        let reply = read_reply(&mut r)?.ok_or("missing reply")?;
        assert_eq!(reply, Reply::Busy { retry_after_ms: 12 });
        assert!(reply.is_busy() && !reply.is_ok());
        assert_eq!(reply.retry_after_ms(), Some(12));
        assert_eq!(reply.epoch(), None, "BUSY carries no epoch");
        assert_eq!(read_reply(&mut r)?, None, "single line, no payload");
        // A mangled hint is a framing violation, not a silent default:
        // treating it as OK-to-retry-now could stampede the server.
        let garbage = b"BUSY retry_after_ms=soon\n";
        match read_reply(&mut std::io::BufReader::new(&garbage[..])) {
            Err(ProtoError::Malformed(what)) => assert!(what.contains("BUSY")),
            other => panic!("want Malformed, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn err_reply_flattens_newlines() -> TestResult {
        let mut buf = Vec::new();
        write_err(&mut buf, "parse error:\nunexpected thing")?;
        let reply = read_reply(&mut std::io::BufReader::new(&buf[..]))?.ok_or("missing reply")?;
        assert_eq!(reply, Reply::Err("parse error:; unexpected thing".into()));
        Ok(())
    }

    /// Framing violations come back as typed [`ProtoError`] values —
    /// distinguishable from transport failures, and never a panic.
    #[test]
    fn malformed_bytes_yield_typed_errors() {
        let garbage = b"WAT 3 cache_hit=9\n";
        match read_reply(&mut std::io::BufReader::new(&garbage[..])) {
            Err(ProtoError::Malformed(what)) => assert!(what.contains("response header")),
            other => panic!("want Malformed, got {other:?}"),
        }
        let bad_field = b"OK x cache_hit=1 epoch=0\n";
        match read_reply(&mut std::io::BufReader::new(&bad_field[..])) {
            Err(ProtoError::Malformed(what)) => assert!(what.contains("payload line count")),
            other => panic!("want Malformed, got {other:?}"),
        }
        // A header that promises more payload than arrives: EOF, typed.
        let truncated = b"OK 2 cache_hit=0 epoch=1\nonly one line\n";
        match read_reply(&mut std::io::BufReader::new(&truncated[..])) {
            Err(ProtoError::UnexpectedEof(_)) => {}
            other => panic!("want UnexpectedEof, got {other:?}"),
        }
        // The io::Error conversion keeps the error kinds apart.
        let io: std::io::Error = ProtoError::Malformed("x".into()).into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
        let io: std::io::Error = ProtoError::UnexpectedEof("y").into();
        assert_eq!(io.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("MATCH+m-nodes"), "MATCH m-nodes");
        assert_eq!(percent_decode("a%20b%3D%27c%27"), "a b='c'");
        assert_eq!(percent_decode("100%"), "100%", "dangling % passes through");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex passes through");
    }
}
