//! Errors for graph queries.

use std::fmt;

/// Errors raised by graph transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// ZoomOut on a module with no invocations in the graph.
    UnknownModule(String),
    /// ZoomOut on a module that is already zoomed out.
    AlreadyZoomedOut(String),
    /// ZoomIn on a module that is not zoomed out.
    NotZoomedOut(String),
    /// A node id referenced a deleted or hidden node.
    NodeNotVisible(crate::graph::NodeId),
    /// The zoom stash table is full (the last index is reserved for
    /// retired composites).
    StashOverflow,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownModule(m) => write!(f, "module '{m}' has no invocations"),
            QueryError::AlreadyZoomedOut(m) => write!(f, "module '{m}' is already zoomed out"),
            QueryError::NotZoomedOut(m) => write!(f, "module '{m}' is not zoomed out"),
            QueryError::NodeNotVisible(n) => write!(f, "node {n} is deleted or hidden"),
            QueryError::StashOverflow => {
                write!(f, "zoom stash table is full (index u32::MAX is reserved)")
            }
        }
    }
}

impl std::error::Error for QueryError {}
