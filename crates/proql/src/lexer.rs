//! ProQL lexer.
//!
//! Keywords are not reserved at the lexical level: everything wordy is
//! an [`Tok::Ident`] and the parser matches keywords case-insensitively,
//! so module names like `Mdealer1` or `in-flight-stats` need no
//! quoting. Identifiers may contain `-` (ProQL has no arithmetic), which
//! is what makes the `m-nodes` class names single tokens.

use crate::error::{ProqlError, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Bare word: keyword, class name, module name, field, …
    Ident(String),
    /// Single-quoted string literal (provenance tokens, module names).
    Str(String),
    /// Unsigned integer literal.
    Int(u64),
    /// `#123` — a node id reference.
    NodeId(u32),
    LParen,
    RParen,
    Comma,
    Semi,
    /// `*` — only used by `COUNT(*)`.
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::NodeId(n) => write!(f, "#{n}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Star => f.write_str("*"),
            Tok::Eq => f.write_str("="),
            Tok::Ne => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize a ProQL script. `--` starts a comment running to end of
/// line.
pub fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            _ if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ProqlError::Lex {
                        pos: i,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Tok::Str(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            '#' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(ProqlError::Lex {
                        pos: i,
                        message: "expected digits after '#'".into(),
                    });
                }
                let digits: String = bytes[start..j].iter().collect();
                let id = digits.parse::<u32>().map_err(|_| ProqlError::Lex {
                    pos: i,
                    message: format!("node id #{digits} out of range"),
                })?;
                out.push(Tok::NodeId(id));
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let digits: String = bytes[start..j].iter().collect();
                let n = digits.parse::<u64>().map_err(|_| ProqlError::Lex {
                    pos: start,
                    message: format!("integer {digits} out of range"),
                })?;
                out.push(Tok::Int(n));
                i = j;
            }
            _ if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.push(Tok::Ident(bytes[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(ProqlError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_statement_shapes() {
        let toks = lex("MATCH m-nodes WHERE module = 'Mdealer1';").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("MATCH".into()),
                Tok::Ident("m-nodes".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("module".into()),
                Tok::Eq,
                Tok::Str("Mdealer1".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_node_refs_ints_and_ne() {
        let toks = lex("DEPENDS(#42, 'C2') DEPTH 3 kind != delta").unwrap();
        assert!(toks.contains(&Tok::NodeId(42)));
        assert!(toks.contains(&Tok::Int(3)));
        assert!(toks.contains(&Tok::Ne));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = lex("-- a comment\n  STATS -- trailing\n").unwrap();
        assert_eq!(toks, vec![Tok::Ident("STATS".into())]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(lex("WHY 'C2"), Err(ProqlError::Lex { .. })));
    }

    #[test]
    fn bare_hash_is_an_error() {
        assert!(matches!(lex("# 12"), Err(ProqlError::Lex { .. })));
    }
}
