//! The WAL-style mutable tail segment layered over a sealed v2 log.
//!
//! A sealed v2 log is immutable: its footer is parsed from the *end* of
//! the file, so appending in place would destroy it. Mutations are
//! instead committed to a sidecar file, `<log>.tail`, as length-prefixed
//! checksummed records; readers resolve visibility newest-segment-wins
//! (tail over footer), and `COMPACT` merges the tail back into a fresh
//! sealed segment.
//!
//! On-disk layout (all fixed-width integers little-endian):
//!
//! ```text
//! header (21 bytes):
//!   magic        "LPTL"   4 bytes
//!   version      u8       currently 1
//!   base_len     u64      length of the sealed base file this tail extends
//!   base_nodes   u64      node count of the sealed base
//! per record:
//!   payload_len  u32
//!   checksum     u64      FNV-1a over the payload bytes
//!   payload      payload_len bytes (varint-packed, tag-prefixed)
//! ```
//!
//! The `base_len`/`base_nodes` binding rejects a stale tail left next to
//! a log that was since rewritten (a crash between COMPACT's rename and
//! its tail unlink leaves exactly that).
//!
//! **Recovery rule:** scan records forward; stop at the first record
//! whose header is short, whose declared length overruns the file, whose
//! checksum mismatches, or whose payload fails to decode. Everything
//! before the stop point is the surviving prefix; everything after is a
//! torn suffix and is truncated. Truncation at *any* byte offset
//! therefore recovers a prefix of the committed records — never an
//! error, never a panic (property-tested in `tests/tail_torn_write.rs`).

use bytes::{Buf, BufMut};
use lipstick_core::obs::fnv1a64;
use lipstick_core::{NodeId, NodeKind, Role};

use crate::codec::{get_kind, get_role, put_kind, put_retired_zoom, put_role};
use crate::error::{Result, StorageError};
use crate::varint::{get_count, get_str, get_u32, put_str, put_u64};

/// Magic bytes opening a tail segment file.
pub const TAIL_MAGIC: &[u8; 4] = b"LPTL";
/// Tail layout version.
pub const TAIL_VERSION: u8 = 1;
/// Fixed header width: magic (4) + version (1) + base_len (8) +
/// base_nodes (8).
pub const TAIL_HEADER_LEN: usize = 21;
/// Fixed per-record frame width: payload_len (4) + checksum (8).
pub const FRAME_LEN: usize = 12;

/// One node carried by an [`TailRecord::AppendGraph`] record. Ids are
/// implicit and sequential: the k-th node of the record gets id
/// `node_count + k` at replay time. Predecessor ids are absolute and
/// may point into the sealed base, earlier tail records, or earlier
/// nodes of the same record.
#[derive(Debug, Clone, PartialEq)]
pub struct TailNode {
    /// bit 0 = deleted (tombstoned at append time).
    pub flags: u8,
    pub role: Role,
    pub kind: NodeKind,
    pub preds: Vec<NodeId>,
}

impl TailNode {
    pub fn is_deleted(&self) -> bool {
        self.flags & 1 != 0
    }
}

/// One invocation carried by an [`TailRecord::AppendGraph`] record.
/// Invocation ids are implicit and sequential past the current table;
/// `m_node` is absolute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailInvocation {
    pub module: String,
    pub execution: u32,
    pub m_node: NodeId,
}

/// A committed tail mutation. One record is one atomic commit: a whole
/// ingested fragment, a whole deletion cone, or a whole zoom — so a
/// torn suffix can drop a mutation but never split one.
#[derive(Debug, Clone, PartialEq)]
pub enum TailRecord {
    /// New workflow-run ingestion: a batch of appended nodes (with their
    /// edges, as predecessor lists) plus the invocations they introduce.
    AppendGraph {
        nodes: Vec<TailNode>,
        invocations: Vec<TailInvocation>,
    },
    /// Visibility tombstones from `DELETE … PROPAGATE`, in deletion
    /// order (the order the resident mutation reports).
    Tombstones { ids: Vec<NodeId> },
    /// `ZOOM OUT TO` the named modules. Replay re-plans the zoom against
    /// the recovered pre-zoom state — the plan is a pure function of
    /// that state, so replay reconstructs the identical composites.
    ZoomOut { modules: Vec<String> },
    /// `ZOOM IN TO` the named modules (always resolved to concrete
    /// names before committing).
    ZoomIn { modules: Vec<String> },
}

const TAG_APPEND_GRAPH: u8 = 1;
const TAG_TOMBSTONES: u8 = 2;
const TAG_ZOOM_OUT: u8 = 3;
const TAG_ZOOM_IN: u8 = 4;

/// Serialize the 21-byte tail header.
pub fn encode_header(base_len: u64, base_nodes: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(TAIL_HEADER_LEN);
    out.extend_from_slice(TAIL_MAGIC);
    out.push(TAIL_VERSION);
    out.extend_from_slice(&base_len.to_le_bytes());
    out.extend_from_slice(&base_nodes.to_le_bytes());
    out
}

/// Validate a tail header against the sealed base it claims to extend.
/// Returns an error for a foreign or stale tail — the caller decides
/// whether that is fatal (explicit recovery) or ignorable (a leftover
/// from before the base was rewritten).
pub fn check_header(data: &[u8], base_len: u64, base_nodes: u64) -> Result<()> {
    if data.len() < TAIL_HEADER_LEN {
        return Err(StorageError::Corrupt("truncated tail header".into()));
    }
    if &data[..4] != TAIL_MAGIC {
        return Err(StorageError::Corrupt("bad tail magic".into()));
    }
    if data[4] != TAIL_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported tail version {}",
            data[4]
        )));
    }
    let claimed_len = u64::from_le_bytes(data[5..13].try_into().expect("8 bytes"));
    let claimed_nodes = u64::from_le_bytes(data[13..21].try_into().expect("8 bytes"));
    if claimed_len != base_len || claimed_nodes != base_nodes {
        return Err(StorageError::Corrupt(format!(
            "tail was written against a different base \
             (tail: {claimed_len} bytes / {claimed_nodes} nodes, \
             base: {base_len} bytes / {base_nodes} nodes)"
        )));
    }
    Ok(())
}

fn put_payload(buf: &mut Vec<u8>, record: &TailRecord) -> Result<()> {
    match record {
        TailRecord::AppendGraph { nodes, invocations } => {
            buf.put_u8(TAG_APPEND_GRAPH);
            put_u64(buf, nodes.len() as u64);
            for node in nodes {
                buf.put_u8(node.flags);
                put_role(buf, &node.role);
                // Retired composites can be re-ingested only via
                // compaction replay, but handle them uniformly with the
                // sealed-record encoder: live zoom views stay
                // unpersistable.
                match &node.kind {
                    NodeKind::Zoomed { stash }
                        if node.is_deleted() && *stash == lipstick_core::graph::RETIRED_STASH =>
                    {
                        put_retired_zoom(buf);
                    }
                    other => put_kind(buf, other)?,
                }
                put_u64(buf, node.preds.len() as u64);
                for p in &node.preds {
                    put_u64(buf, u64::from(p.0));
                }
            }
            put_u64(buf, invocations.len() as u64);
            for inv in invocations {
                put_str(buf, &inv.module);
                put_u64(buf, u64::from(inv.execution));
                put_u64(buf, u64::from(inv.m_node.0));
            }
        }
        TailRecord::Tombstones { ids } => {
            buf.put_u8(TAG_TOMBSTONES);
            put_u64(buf, ids.len() as u64);
            for id in ids {
                put_u64(buf, u64::from(id.0));
            }
        }
        TailRecord::ZoomOut { modules } => {
            buf.put_u8(TAG_ZOOM_OUT);
            put_u64(buf, modules.len() as u64);
            for m in modules {
                put_str(buf, m);
            }
        }
        TailRecord::ZoomIn { modules } => {
            buf.put_u8(TAG_ZOOM_IN);
            put_u64(buf, modules.len() as u64);
            for m in modules {
                put_str(buf, m);
            }
        }
    }
    Ok(())
}

/// Frame one record: `[payload_len u32][fnv1a64 u64][payload]`.
pub fn encode_record(record: &TailRecord) -> Result<Vec<u8>> {
    let mut payload = Vec::new();
    put_payload(&mut payload, record)?;
    let len = u32::try_from(payload.len())
        .map_err(|_| StorageError::Corrupt("tail record exceeds 4 GiB".into()))?;
    let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

fn get_node_id(buf: &mut impl Buf) -> Result<NodeId> {
    Ok(NodeId(get_u32(buf)?))
}

/// Decode one record payload (the bytes the checksum covers).
pub fn decode_payload(payload: &[u8]) -> Result<TailRecord> {
    let mut buf = payload;
    if !buf.has_remaining() {
        return Err(StorageError::Corrupt("empty tail record".into()));
    }
    let record = match buf.get_u8() {
        TAG_APPEND_GRAPH => {
            let node_count = get_count(&mut buf)?;
            let mut nodes = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                if !buf.has_remaining() {
                    return Err(StorageError::Corrupt("truncated tail node".into()));
                }
                let flags = buf.get_u8();
                let role = get_role(&mut buf)?;
                let kind = get_kind(&mut buf)?;
                let pred_count = get_count(&mut buf)?;
                let mut preds = Vec::with_capacity(pred_count);
                for _ in 0..pred_count {
                    preds.push(get_node_id(&mut buf)?);
                }
                nodes.push(TailNode {
                    flags,
                    role,
                    kind,
                    preds,
                });
            }
            let inv_count = get_count(&mut buf)?;
            let mut invocations = Vec::with_capacity(inv_count);
            for _ in 0..inv_count {
                invocations.push(TailInvocation {
                    module: get_str(&mut buf)?,
                    execution: get_u32(&mut buf)?,
                    m_node: get_node_id(&mut buf)?,
                });
            }
            TailRecord::AppendGraph { nodes, invocations }
        }
        TAG_TOMBSTONES => {
            let count = get_count(&mut buf)?;
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(get_node_id(&mut buf)?);
            }
            TailRecord::Tombstones { ids }
        }
        TAG_ZOOM_OUT => {
            let count = get_count(&mut buf)?;
            let mut modules = Vec::with_capacity(count);
            for _ in 0..count {
                modules.push(get_str(&mut buf)?);
            }
            TailRecord::ZoomOut { modules }
        }
        TAG_ZOOM_IN => {
            let count = get_count(&mut buf)?;
            let mut modules = Vec::with_capacity(count);
            for _ in 0..count {
                modules.push(get_str(&mut buf)?);
            }
            TailRecord::ZoomIn { modules }
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "unknown tail record tag {other}"
            )))
        }
    };
    if buf.has_remaining() {
        return Err(StorageError::Corrupt(
            "trailing garbage inside tail record".into(),
        ));
    }
    Ok(record)
}

/// Recover the surviving prefix of a tail file's bytes.
///
/// Returns the decoded records and the byte length of the clean prefix
/// (header included); the caller truncates the file to that length
/// before appending. A missing or foreign header is an error (the
/// caller must decide what the tail belongs to); anything wrong *after*
/// a valid header is a torn suffix, silently dropped per the recovery
/// rule above.
pub fn recover(data: &[u8], base_len: u64, base_nodes: u64) -> Result<(Vec<TailRecord>, usize)> {
    check_header(data, base_len, base_nodes)?;
    let mut records = Vec::new();
    let mut at = TAIL_HEADER_LEN;
    // A `while let` over each frame header; any torn condition below
    // breaks out, leaving `at` at the end of the clean prefix.
    while let Some(frame) = data.get(at..at + FRAME_LEN) {
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
        let Some(payload) = data.get(at + FRAME_LEN..at + FRAME_LEN + len) else {
            break; // declared length overruns the file: torn
        };
        if fnv1a64(payload) != checksum {
            break; // bits flipped or half-written: torn
        }
        let Ok(record) = decode_payload(payload) else {
            break; // checksummed garbage (never expected): treat as torn
        };
        records.push(record);
        at += FRAME_LEN + len;
    }
    Ok((records, at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lipstick_core::InvocationId;

    fn sample_records() -> Vec<TailRecord> {
        vec![
            TailRecord::AppendGraph {
                nodes: vec![
                    TailNode {
                        flags: 0,
                        role: Role::Free,
                        kind: NodeKind::BaseTuple {
                            token: lipstick_core::Token::new("t9"),
                        },
                        preds: vec![],
                    },
                    TailNode {
                        flags: 0,
                        role: Role::Intermediate(InvocationId(2)),
                        kind: NodeKind::Plus,
                        preds: vec![NodeId(0), NodeId(6)],
                    },
                ],
                invocations: vec![TailInvocation {
                    module: "Mdealer1".into(),
                    execution: 3,
                    m_node: NodeId(6),
                }],
            },
            TailRecord::Tombstones {
                ids: vec![NodeId(1), NodeId(4), NodeId(5)],
            },
            TailRecord::ZoomOut {
                modules: vec!["M".into(), "Agg".into()],
            },
            TailRecord::ZoomIn {
                modules: vec!["M".into()],
            },
        ]
    }

    fn encode_tail(records: &[TailRecord]) -> Vec<u8> {
        let mut bytes = encode_header(123, 7);
        for r in records {
            bytes.extend_from_slice(&encode_record(r).unwrap());
        }
        bytes
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let bytes = encode_tail(&records);
        let (decoded, clean) = recover(&bytes, 123, 7).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(clean, bytes.len());
    }

    #[test]
    fn truncation_recovers_a_prefix() {
        let records = sample_records();
        let bytes = encode_tail(&records);
        for cut in TAIL_HEADER_LEN..bytes.len() {
            let (decoded, clean) = recover(&bytes[..cut], 123, 7).unwrap();
            assert!(decoded.len() <= records.len());
            assert_eq!(decoded.as_slice(), &records[..decoded.len()]);
            assert!(clean <= cut);
        }
    }

    #[test]
    fn flipped_bit_drops_the_suffix() {
        let records = sample_records();
        let bytes = encode_tail(&records);
        // Corrupt a byte inside the second record's payload.
        let first_len = encode_record(&records[0]).unwrap().len();
        let mut garbled = bytes.clone();
        let at = TAIL_HEADER_LEN + first_len + FRAME_LEN + 1;
        garbled[at] ^= 0xff;
        let (decoded, clean) = recover(&garbled, 123, 7).unwrap();
        assert_eq!(decoded.as_slice(), &records[..1]);
        assert_eq!(clean, TAIL_HEADER_LEN + first_len);
    }

    #[test]
    fn foreign_base_is_rejected() {
        let bytes = encode_tail(&sample_records());
        assert!(recover(&bytes, 123, 8).is_err());
        assert!(recover(&bytes, 124, 7).is_err());
        assert!(recover(&[], 123, 7).is_err());
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xff;
        assert!(recover(&bad_magic, 123, 7).is_err());
    }
}
