//! Symbolic provenance expressions.

use std::fmt;
use std::sync::Arc;

/// A provenance token: the "atomic" annotation of one input tuple
/// (tuple identifiers in the paper, e.g. `C2` for a car in the dealer's
/// state or `I1` for a bid request).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub Arc<str>);

impl Token {
    pub fn new(s: impl AsRef<str>) -> Self {
        Token(Arc::from(s.as_ref()))
    }
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Token {
    fn from(s: &str) -> Self {
        Token::new(s)
    }
}

/// A symbolic provenance expression over tokens: the tree form of
/// N\[X\] elements extended with δ.
///
/// Sums and products are n-ary (flattened) to keep trees shallow; the
/// canonical polynomial form lives in [`super::Polynomial`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProvExpr {
    /// Absent data.
    Zero,
    /// Untracked data.
    One,
    /// An input-tuple token.
    Tok(Token),
    /// Alternative derivations.
    Sum(Vec<ProvExpr>),
    /// Joint derivations.
    Prod(Vec<ProvExpr>),
    /// Duplicate elimination (group-by / DISTINCT).
    Delta(Box<ProvExpr>),
}

impl ProvExpr {
    pub fn tok(s: impl AsRef<str>) -> Self {
        ProvExpr::Tok(Token::new(s))
    }

    /// Smart sum constructor: drops zeros, flattens nested sums, and
    /// collapses singleton/empty cases.
    pub fn sum(parts: impl IntoIterator<Item = ProvExpr>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                ProvExpr::Zero => {}
                ProvExpr::Sum(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => ProvExpr::Zero,
            1 => out.pop().expect("len checked"),
            _ => ProvExpr::Sum(out),
        }
    }

    /// Smart product constructor: short-circuits zero, drops ones,
    /// flattens nested products.
    pub fn prod(parts: impl IntoIterator<Item = ProvExpr>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                ProvExpr::Zero => return ProvExpr::Zero,
                ProvExpr::One => {}
                ProvExpr::Prod(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => ProvExpr::One,
            1 => out.pop().expect("len checked"),
            _ => ProvExpr::Prod(out),
        }
    }

    /// δ wrapper; δ(0) = 0 (no derivations ⇒ nothing to deduplicate).
    pub fn delta(inner: ProvExpr) -> Self {
        match inner {
            ProvExpr::Zero => ProvExpr::Zero,
            other => ProvExpr::Delta(Box::new(other)),
        }
    }

    /// All distinct tokens mentioned by the expression.
    pub fn tokens(&self) -> std::collections::BTreeSet<&Token> {
        let mut set = std::collections::BTreeSet::new();
        self.collect_tokens(&mut set);
        set
    }

    fn collect_tokens<'a>(&'a self, into: &mut std::collections::BTreeSet<&'a Token>) {
        match self {
            ProvExpr::Zero | ProvExpr::One => {}
            ProvExpr::Tok(t) => {
                into.insert(t);
            }
            ProvExpr::Sum(v) | ProvExpr::Prod(v) => {
                for p in v {
                    p.collect_tokens(into);
                }
            }
            ProvExpr::Delta(p) => p.collect_tokens(into),
        }
    }

    /// Number of operators + leaves: the size of the *expanded* symbolic
    /// representation. Compared against graph size in the representation
    /// ablation (graphs share sub-expressions; trees do not).
    pub fn size(&self) -> usize {
        match self {
            ProvExpr::Zero | ProvExpr::One | ProvExpr::Tok(_) => 1,
            ProvExpr::Sum(v) | ProvExpr::Prod(v) => 1 + v.iter().map(ProvExpr::size).sum::<usize>(),
            ProvExpr::Delta(p) => 1 + p.size(),
        }
    }

    /// Does the expression contain any δ operator?
    pub fn has_delta(&self) -> bool {
        match self {
            ProvExpr::Zero | ProvExpr::One | ProvExpr::Tok(_) => false,
            ProvExpr::Sum(v) | ProvExpr::Prod(v) => v.iter().any(ProvExpr::has_delta),
            ProvExpr::Delta(_) => true,
        }
    }
}

impl fmt::Display for ProvExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn wrap(e: &ProvExpr, f: &mut fmt::Formatter<'_>, parent_prod: bool) -> fmt::Result {
            match e {
                ProvExpr::Zero => write!(f, "0"),
                ProvExpr::One => write!(f, "1"),
                ProvExpr::Tok(t) => write!(f, "{t}"),
                ProvExpr::Sum(v) => {
                    if parent_prod {
                        write!(f, "(")?;
                    }
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " + ")?;
                        }
                        wrap(p, f, false)?;
                    }
                    if parent_prod {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                ProvExpr::Prod(v) => {
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, "·")?;
                        }
                        wrap(p, f, true)?;
                    }
                    Ok(())
                }
                ProvExpr::Delta(p) => {
                    write!(f, "δ(")?;
                    wrap(p, f, false)?;
                    write!(f, ")")
                }
            }
        }
        wrap(self, f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_sum_flattens_and_drops_zero() {
        let e = ProvExpr::sum(vec![
            ProvExpr::tok("a"),
            ProvExpr::Zero,
            ProvExpr::sum(vec![ProvExpr::tok("b"), ProvExpr::tok("c")]),
        ]);
        assert_eq!(e.to_string(), "a + b + c");
    }

    #[test]
    fn smart_prod_short_circuits_zero() {
        let e = ProvExpr::prod(vec![ProvExpr::tok("a"), ProvExpr::Zero]);
        assert_eq!(e, ProvExpr::Zero);
    }

    #[test]
    fn smart_prod_drops_one() {
        let e = ProvExpr::prod(vec![ProvExpr::One, ProvExpr::tok("a")]);
        assert_eq!(e, ProvExpr::tok("a"));
    }

    #[test]
    fn empty_sum_is_zero_empty_prod_is_one() {
        assert_eq!(ProvExpr::sum(vec![]), ProvExpr::Zero);
        assert_eq!(ProvExpr::prod(vec![]), ProvExpr::One);
    }

    #[test]
    fn delta_of_zero_is_zero() {
        assert_eq!(ProvExpr::delta(ProvExpr::Zero), ProvExpr::Zero);
        assert!(ProvExpr::delta(ProvExpr::tok("a")).has_delta());
    }

    #[test]
    fn display_parenthesizes_sum_under_prod() {
        let e = ProvExpr::prod(vec![
            ProvExpr::tok("x"),
            ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]),
        ]);
        assert_eq!(e.to_string(), "x·(a + b)");
    }

    #[test]
    fn token_collection() {
        let e = ProvExpr::prod(vec![
            ProvExpr::tok("x"),
            ProvExpr::delta(ProvExpr::sum(vec![ProvExpr::tok("a"), ProvExpr::tok("x")])),
        ]);
        let toks: Vec<&str> = e.tokens().iter().map(|t| t.as_str()).collect();
        assert_eq!(toks, vec!["a", "x"]);
    }

    #[test]
    fn size_counts_expanded_tree() {
        let e = ProvExpr::sum(vec![
            ProvExpr::prod(vec![ProvExpr::tok("a"), ProvExpr::tok("b")]),
            ProvExpr::tok("c"),
        ]);
        // sum + (prod + a + b) + c = 5
        assert_eq!(e.size(), 5);
    }
}
