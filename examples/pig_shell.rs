//! A tiny interactive Pig Latin shell with provenance.
//!
//! Reads statements from stdin (terminated by `;`), executes them
//! against an in-memory environment pre-loaded with a demo relation,
//! and prints each result with its provenance expression. `\dot ALIAS`
//! prints the provenance graph as Graphviz, `\sub N` the subgraph
//! query result rooted at node N as Graphviz; `\quit` exits.
//!
//! ```sh
//! echo "B = FILTER Cars BY Model == 'Civic';" | cargo run --example pig_shell
//! ```

use std::io::{BufRead, Write};

use lipstick::core::graph::dot::to_dot;
use lipstick::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "Cars",
        Schema::named(&[("CarId", DataType::Str), ("Model", DataType::Str)]),
        vec![
            tuple!["C1", "Accord"],
            tuple!["C2", "Civic"],
            tuple!["C3", "Civic"],
            tuple!["C4", "Jetta"],
        ],
        &mut tracker,
        |_, _, t| t.get(0).unwrap().to_text().into_owned(),
    )?;
    let udfs = UdfRegistry::new();

    println!("lipstick pig shell — relations: {:?}", env.aliases());
    println!("enter Pig Latin statements ending in ';', \\dot ALIAS, or \\quit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print!("pig> ");
    std::io::stdout().flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed == "\\quit" {
            break;
        }
        if let Some(alias) = trimmed.strip_prefix("\\dot ") {
            match env.relation(alias.trim()) {
                Some(_) => println!("{}", to_dot(tracker.graph(), alias.trim())),
                None => println!("unknown alias '{alias}'"),
            }
            print!("pig> ");
            std::io::stdout().flush()?;
            continue;
        }
        if let Some(id) = trimmed.strip_prefix("\\sub ") {
            match id.trim().parse::<u32>().ok().map(NodeId) {
                Some(root) if (root.index()) < tracker.graph().len() => {
                    match lipstick::core::query::subgraph(tracker.graph(), root) {
                        Ok(result) => {
                            println!("{result}");
                            println!("{}", result.to_dot(tracker.graph(), &format!("sub_{root}")));
                        }
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => println!("usage: \\sub NODE_ID (0..{})", tracker.graph().len()),
            }
            print!("pig> ");
            std::io::stdout().flush()?;
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            continue; // statement continues on the next line
        }
        let script = std::mem::take(&mut buffer);
        match run_script(&script, &mut env, &mut tracker, &udfs) {
            Ok(compiled) => {
                for stmt in &compiled.stmts {
                    let rel = env.relation(&stmt.alias).expect("bound");
                    println!("{}: {} ({} rows)", stmt.alias, stmt.schema, rel.len());
                    for row in rel.rows.iter().take(10) {
                        println!(
                            "  {}   ⟵   {}",
                            row.tuple,
                            tracker.graph().expr_of(row.ann.prov)
                        );
                    }
                    if rel.len() > 10 {
                        println!("  … {} more", rel.len() - 10);
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
        print!("pig> ");
        std::io::stdout().flush()?;
    }
    Ok(())
}
