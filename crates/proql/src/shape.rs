//! Result shaping: aggregates, `GROUP BY`, `ORDER BY`, `LIMIT`.
//!
//! One implementation, generic over [`GraphStore`], shared by the
//! resident and paged executors — the two backends cannot drift on
//! shaping semantics because they run the same code over the same node
//! sets. All orderings are total (ties break on the group value or
//! node id), so shaped results are byte-for-byte deterministic, which
//! the differential harness (`tests/differential.rs`) relies on.

use std::collections::BTreeMap;

use lipstick_core::store::GraphStore;
use lipstick_core::{NodeId, NodeKind};

use crate::ast::{Aggregate, Field, OrderBy, Shaping, SortKey};
use crate::result::{Cell, NodeSetResult, QueryOutput, TableResult};

/// The cell a `GROUP BY` (or `ORDER BY field`) key renders for nodes
/// the field does not apply to.
const NONE_MARKER: &str = "(none)";

/// A node's value for a shaping field, when the field applies.
/// Mirrors the predicate semantics in both executors'
/// `comparison_matches`.
pub(crate) fn field_cell<S: GraphStore + ?Sized>(
    store: &S,
    id: NodeId,
    field: Field,
) -> Option<Cell> {
    match field {
        Field::Kind => Some(Cell::Str(store.kind_of(id).name().to_string())),
        Field::Role => Some(Cell::Str(store.role_of(id).name().to_string())),
        Field::Module => store
            .role_of(id)
            .invocation()
            .map(|inv| Cell::Str(store.invocation(inv).module.clone())),
        Field::Execution => store
            .role_of(id)
            .invocation()
            .map(|inv| Cell::Int(u64::from(store.invocation(inv).execution))),
        Field::Token => match store.kind_of(id) {
            NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token } => {
                Some(Cell::Str(token.as_str().to_string()))
            }
            _ => None,
        },
    }
}

/// A grouping key with the order the shaped output uses: every present
/// value first (in [`Cell`] order), the missing-field group last.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum GroupKey {
    Present(Cell),
    Missing,
}

impl GroupKey {
    fn new(cell: Option<Cell>) -> GroupKey {
        match cell {
            Some(c) => GroupKey::Present(c),
            None => GroupKey::Missing,
        }
    }

    fn into_cell(self) -> Cell {
        match self {
            GroupKey::Present(c) => c,
            GroupKey::Missing => Cell::Str(NONE_MARKER.into()),
        }
    }
}

/// Apply a query's shaping clauses to an executed node set. `visited`
/// passes through untouched: shaping reshapes the answer, not the
/// executor's work accounting.
pub(crate) fn apply_shaping<S: GraphStore + ?Sized>(
    store: &S,
    nodes: Vec<NodeId>,
    visited: usize,
    shaping: &Shaping,
) -> QueryOutput {
    if shaping.is_plain() {
        return QueryOutput::Nodes(NodeSetResult { nodes, visited });
    }
    if let Some(agg) = &shaping.agg {
        return QueryOutput::Table(aggregate(store, &nodes, visited, *agg));
    }
    if let Some(group_field) = shaping.group_by {
        return QueryOutput::Table(group(store, &nodes, visited, group_field, shaping));
    }
    // Plain node set with ORDER BY and/or LIMIT.
    let mut nodes = nodes;
    if let Some(OrderBy { key, desc }) = shaping.order_by {
        match key {
            SortKey::Id => {
                if desc {
                    nodes.reverse(); // sets arrive ascending by id
                }
            }
            SortKey::Field(f) => {
                // Total order: (field value — missing last, id); DESC
                // reverses the whole order, ids included, so every
                // ordering is deterministic for the differential
                // harness.
                let mut keyed: Vec<(GroupKey, NodeId)> = nodes
                    .into_iter()
                    .map(|id| (GroupKey::new(field_cell(store, id, f)), id))
                    .collect();
                keyed.sort();
                if desc {
                    keyed.reverse();
                }
                nodes = keyed.into_iter().map(|(_, id)| id).collect();
            }
            // The parser rejects ORDER BY count without GROUP BY.
            SortKey::Count => unreachable!("validated at parse time"),
        }
    }
    if let Some(n) = shaping.limit {
        nodes.truncate(usize::try_from(n).unwrap_or(usize::MAX));
    }
    QueryOutput::Nodes(NodeSetResult { nodes, visited })
}

/// `COUNT(*)` / `COUNT(DISTINCT f)`: always exactly one row, zero
/// included — an empty match counts as 0, never errors.
fn aggregate<S: GraphStore + ?Sized>(
    store: &S,
    nodes: &[NodeId],
    visited: usize,
    agg: Aggregate,
) -> TableResult {
    let (column, value) = match agg {
        Aggregate::CountStar => ("count".to_string(), nodes.len() as u64),
        Aggregate::CountDistinct(f) => {
            let mut distinct: Vec<Cell> = nodes
                .iter()
                .filter_map(|&id| field_cell(store, id, f))
                .collect();
            distinct.sort();
            distinct.dedup();
            (
                format!("count(distinct {})", f.name()),
                distinct.len() as u64,
            )
        }
    };
    TableResult {
        columns: vec![column],
        rows: vec![vec![Cell::Int(value)]],
        visited,
    }
}

/// `GROUP BY field`: one row per distinct field value (plus a
/// `(none)` row for nodes the field does not apply to), ordered by the
/// group value unless `ORDER BY count` reorders rows by size. An empty
/// node set produces a well-formed zero-row table.
fn group<S: GraphStore + ?Sized>(
    store: &S,
    nodes: &[NodeId],
    visited: usize,
    field: Field,
    shaping: &Shaping,
) -> TableResult {
    let mut counts: BTreeMap<GroupKey, u64> = BTreeMap::new();
    for &id in nodes {
        *counts
            .entry(GroupKey::new(field_cell(store, id, field)))
            .or_insert(0) += 1;
    }
    // BTreeMap iteration is already the default order: group value
    // ascending, missing last.
    let mut rows: Vec<(GroupKey, u64)> = counts.into_iter().collect();
    if let Some(OrderBy { key, desc }) = shaping.order_by {
        if key == SortKey::Count {
            rows.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
        }
        if desc {
            rows.reverse();
        }
    }
    if let Some(n) = shaping.limit {
        rows.truncate(usize::try_from(n).unwrap_or(usize::MAX));
    }
    TableResult {
        columns: vec![field.name().to_string(), "count".to_string()],
        rows: rows
            .into_iter()
            .map(|(key, count)| vec![key.into_cell(), Cell::Int(count)])
            .collect(),
        visited,
    }
}
