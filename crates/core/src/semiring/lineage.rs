//! The lineage semiring: sets of contributing tokens.
//!
//! `Which(X)`-provenance: the flat set of input tuples that contributed
//! to an output in any way. Both + and · are set union; this is the
//! weakest informative provenance and corresponds to what coarse-grained
//! workflow provenance can offer *per module*.

use std::collections::BTreeSet;

use super::expr::Token;
use super::Semiring;

/// Lineage: `None` encodes 0 (no derivation — distinct from the empty
/// set, which is 1, "derivable from nothing tracked").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Lineage(pub Option<BTreeSet<Token>>);

impl Lineage {
    pub fn token(t: impl Into<Token>) -> Self {
        let mut s = BTreeSet::new();
        s.insert(t.into());
        Lineage(Some(s))
    }

    /// The contributing tokens, if the tuple is derivable.
    pub fn tokens(&self) -> Option<&BTreeSet<Token>> {
        self.0.as_ref()
    }
}

impl Semiring for Lineage {
    fn zero() -> Self {
        Lineage(None)
    }
    fn one() -> Self {
        Lineage(Some(BTreeSet::new()))
    }
    fn plus(&self, other: &Self) -> Self {
        match (&self.0, &other.0) {
            (None, x) => Lineage(x.clone()),
            (x, None) => Lineage(x.clone()),
            (Some(a), Some(b)) => Lineage(Some(a.union(b).cloned().collect())),
        }
    }
    fn times(&self, other: &Self) -> Self {
        match (&self.0, &other.0) {
            (None, _) | (_, None) => Lineage(None),
            (Some(a), Some(b)) => Lineage(Some(a.union(b).cloned().collect())),
        }
    }
    // δ is the identity: union is idempotent.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(tokens: &[&str]) -> Lineage {
        Lineage(Some(tokens.iter().map(Token::new).collect()))
    }

    #[test]
    fn plus_and_times_union() {
        assert_eq!(l(&["a"]).plus(&l(&["b"])), l(&["a", "b"]));
        assert_eq!(l(&["a"]).times(&l(&["b"])), l(&["a", "b"]));
    }

    #[test]
    fn zero_annihilates_times_but_not_plus() {
        assert_eq!(l(&["a"]).times(&Lineage::zero()), Lineage::zero());
        assert_eq!(l(&["a"]).plus(&Lineage::zero()), l(&["a"]));
    }

    #[test]
    fn laws_on_samples() {
        crate::semiring::laws::check_laws(l(&["a"]), l(&["b", "c"]), Lineage::zero());
        crate::semiring::laws::check_laws(Lineage::one(), l(&["b"]), l(&["a", "c"]));
    }
}
