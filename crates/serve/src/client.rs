//! A blocking line-protocol client, used by `proql_shell --connect`,
//! the server's tests, and the `proql_server` bench.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::proto::{read_reply, Reply};

/// How [`Client::query_with_retry`] behaves under `BUSY` shedding and
/// transient transport failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total send attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// First backoff, milliseconds; doubles per retry (full jitter).
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (1-based): exponential
    /// growth from the base, capped, then **full jitter** — a uniform
    /// draw from `[cap/2, cap]` — so a burst of shed clients doesn't
    /// retry in lockstep and re-saturate the queue it just overflowed.
    /// A server-provided `retry_after_ms` hint raises the floor.
    fn backoff(&self, retry: u32, server_hint_ms: Option<u64>) -> Duration {
        let cap = self
            .base_backoff_ms
            .saturating_mul(1u64 << retry.min(20).saturating_sub(1))
            .clamp(1, self.max_backoff_ms.max(1));
        let jittered = cap / 2 + jitter_below(cap / 2 + 1);
        Duration::from_millis(jittered.max(server_hint_ms.unwrap_or(0)))
    }
}

/// Cheap process-wide jitter source: a splitmix64 stream seeded from
/// the clock once. Statistical quality hardly matters — the point is
/// only that concurrent clients desynchronize their retries.
fn jitter_below(bound: u64) -> u64 {
    static STATE: AtomicU64 = AtomicU64::new(0);
    if STATE.load(Ordering::Relaxed) == 0 {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0x9e37_79b9, |d| d.as_nanos() as u64)
            | 1;
        let _ = STATE.compare_exchange(0, seed, Ordering::Relaxed, Ordering::Relaxed);
    }
    let mut x = STATE.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x % bound.max(1)
}

/// Is this transport error worth a reconnect-and-retry? Connection
/// teardown mid-exchange (the server restarted, an idle timeout fired,
/// a shutdown drained us) is; anything else — refused, malformed
/// frames (`InvalidData`), permissions — is not.
fn transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// One persistent line-protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Resolved at connect time so retries can re-dial the same server
    /// without repeating (possibly nondeterministic) name resolution.
    addr: SocketAddr,
    /// Cumulative retries issued by [`Client::query_with_retry`] over
    /// this client's lifetime (reconnects and post-`BUSY` resends).
    retries: u64,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved empty",
            )
        })?;
        let stream = TcpStream::connect(resolved)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            addr: resolved,
            retries: 0,
        })
    }

    /// The server address this client resolved at connect time.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Retries issued by [`Client::query_with_retry`] so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Drop the current connection and dial the stored address again.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// Send one statement and wait for its framed reply. Newlines in
    /// the statement collapse to spaces (the protocol is one statement
    /// per line).
    pub fn query(&mut self, statement: &str) -> std::io::Result<Reply> {
        let flat = statement.replace(['\n', '\r'], " ");
        self.writer.write_all(flat.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        read_reply(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )
        })
    }

    /// [`Client::query`] with retries: `BUSY` sheds back off (honoring
    /// the server's `retry_after_ms` floor) and resend; transient
    /// transport failures reconnect first. Both wait a jittered
    /// exponential backoff. After `max_attempts` the last outcome is
    /// returned as-is — a final `BUSY` surfaces as `Ok(Reply::Busy)`,
    /// so callers still see the shed rather than an invented error.
    ///
    /// Retrying is safe here because shed statements never executed,
    /// and a statement whose reply was torn by a connection drop is
    /// only resent — at-least-once, matching what `bench_replay` and
    /// the shell already accept from manual reruns.
    pub fn query_with_retry(
        &mut self,
        statement: &str,
        policy: &RetryPolicy,
    ) -> std::io::Result<Reply> {
        let attempts = policy.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            let outcome = self.query(statement);
            retry += 1;
            let hint = match &outcome {
                Ok(Reply::Busy { retry_after_ms }) if retry < attempts => Some(*retry_after_ms),
                Err(e) if transient(e) && retry < attempts => None,
                _ => return outcome,
            };
            self.retries += 1;
            std::thread::sleep(policy.backoff(retry, hint));
            if hint.is_none() {
                // Transport failure: the old socket is dead; a failed
                // re-dial is final (the server is gone, not busy).
                self.reconnect()?;
            }
        }
    }
}

/// Issue one HTTP `POST /query` on a fresh connection (the shim is
/// one-shot) and return `(status line, body)`.
pub fn http_post_query(
    addr: impl ToSocketAddrs,
    statement: &str,
) -> std::io::Result<(String, String)> {
    http_request(addr, &{
        let body = statement.as_bytes();
        let mut req = format!(
            "POST /query HTTP/1.1\r\nHost: lipstick\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        req.push_str(statement);
        req
    })
}

/// Issue one HTTP `GET /explain?q=…` (statement percent-encoded by the
/// caller or plain if it needs no escaping).
pub fn http_get_explain(
    addr: impl ToSocketAddrs,
    encoded_query: &str,
) -> std::io::Result<(String, String)> {
    http_request(
        addr,
        &format!("GET /explain?q={encoded_query} HTTP/1.1\r\nHost: lipstick\r\n\r\n"),
    )
}

/// Issue one HTTP `GET` for an arbitrary target (`/metrics`,
/// `/slow?n=…`) and return `(status line, body)`.
pub fn http_get(addr: impl ToSocketAddrs, target: &str) -> std::io::Result<(String, String)> {
    http_request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: lipstick\r\n\r\n"),
    )
}

fn http_request(addr: impl ToSocketAddrs, raw: &str) -> std::io::Result<(String, String)> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw.as_bytes())?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header/body split")
    })?;
    let status = head.lines().next().unwrap_or_default().to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_honors_the_server_hint() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 80,
        };
        for retry in 1..=8 {
            let cap = (10u64 << (retry - 1)).min(80);
            let d = policy.backoff(retry, None).as_millis() as u64;
            assert!(
                (cap / 2..=cap).contains(&d),
                "retry {retry}: {d}ms outside [{}, {cap}]",
                cap / 2
            );
        }
        // The server's hint is a floor, not a cap.
        let d = policy.backoff(1, Some(500)).as_millis() as u64;
        assert!(d >= 500, "hint ignored: {d}ms");
    }

    #[test]
    fn transient_classification_separates_teardown_from_refusal() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::ConnectionReset,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(transient(&Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [
            ErrorKind::ConnectionRefused,
            ErrorKind::InvalidData,
            ErrorKind::PermissionDenied,
        ] {
            assert!(!transient(&Error::new(kind, "x")), "{kind:?}");
        }
    }
}
