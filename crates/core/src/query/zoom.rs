//! ZoomOut and ZoomIn (paper §4.1).
//!
//! ZoomOut on a set of module names hides every invocation's intermediate
//! computation and state, replacing each invocation by a composite node
//! between its inputs and outputs. ZoomIn inverts it exactly:
//! `ZoomIn(ZoomOut(G, M), M) = G`.
//!
//! Because invocations of the same module may share state, zooming out a
//! *proper subset* of a module's invocations is not meaningful (§4.1);
//! the unit of zooming is the module name, covering all its invocations.

use crate::graph::node::{NodeId, NodeKind, Role};
use crate::graph::{InvocationId, ProvGraph, ZoomStash};
use crate::store::GraphStore;

use super::error::QueryError;

/// One composite zoom node to create: the invocation it stands for and
/// the input/output nodes it is wired between (ascending id order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositePlan {
    pub invocation: InvocationId,
    pub inputs: Vec<NodeId>,
    pub outputs: Vec<NodeId>,
}

/// Everything a ZoomOut of one module does, computed against an
/// immutable store: which nodes it hides and which composites it adds.
/// An applier replays this against its own representation — the
/// resident graph mutates nodes in place, the append-log backend turns
/// it into tail records plus an overlay — and both land on the same
/// visible graph because the decisions were all made here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoomModulePlan {
    pub module: String,
    /// Nodes this module's zoom hides, in the order the resident
    /// mutation would hide them (step 3-4 discovery order).
    pub hidden: Vec<NodeId>,
    /// One composite per invocation, in invocation order. Composite ids
    /// are assigned at apply time: `node_count + k` over the whole
    /// multi-module plan, in plan order.
    pub composites: Vec<CompositePlan>,
}

impl ZoomModulePlan {
    /// Total composites across a multi-module plan slice.
    pub fn total_composites(plans: &[ZoomModulePlan]) -> usize {
        plans.iter().map(|p| p.composites.len()).sum()
    }
}

/// Plan a multi-module ZoomOut against any [`GraphStore`], without
/// mutating anything. `zoomed_out` names the modules currently zoomed
/// out and `stash_count` the number of stashes ever allocated — the
/// caller's zoom bookkeeping, which a bare store does not carry.
///
/// The plan simulates the resident mutation exactly: hiding decisions
/// for module *k* see the hides of modules *1..k* (and the composites
/// they created), so applying the returned plan is bit-identical to
/// running the historical in-place loop.
///
/// Steps mirror the paper's five-step procedure:
/// 1. find the invocations of the modules;
/// 2. locate their input and state nodes;
/// 3. hide their intermediate computation (our `Role` tags; validated
///    against the Definition 4.1 characterization by tests);
/// 4. hide their state nodes and the base tuple nodes feeding only them;
/// 5. add a composite node per invocation wired input → zoom → output.
pub fn plan_zoom_out<S: GraphStore + ?Sized>(
    store: &S,
    modules: &[&str],
    zoomed_out: &[String],
    stash_count: usize,
) -> Result<Vec<ZoomModulePlan>, QueryError> {
    // Validate first so the operation is atomic. A duplicate within
    // the list is the in-call spelling of zooming an already-zoomed
    // module (validation runs against the pre-zoom state, so without
    // this check a repeated name would zoom twice and corrupt the
    // graph with duplicate composites).
    let mut seen = std::collections::HashSet::new();
    for m in modules {
        if store.invocations_of(m).is_empty() {
            return Err(QueryError::UnknownModule((*m).to_string()));
        }
        if !seen.insert(*m) || zoomed_out.iter().any(|z| z == m) {
            return Err(QueryError::AlreadyZoomedOut((*m).to_string()));
        }
    }
    // One stash per module; RETIRED_STASH is reserved for retired
    // composites (and the storage codec's sentinel tag), so it must
    // never be allocated as a live index. Checked up front to keep the
    // operation atomic.
    if stash_count + modules.len() > crate::graph::node::RETIRED_STASH as usize {
        return Err(QueryError::StashOverflow);
    }

    let n = store.node_count();
    // Simulated mutation state: hides from earlier modules in this
    // call, and composite edges they would have added. Composites are
    // always visible, so only the extra successors matter (a base
    // tuple whose successor set gained a composite stays visible).
    let mut sim_hidden = vec![false; n];
    let mut sim_extra_succs: std::collections::HashMap<NodeId, usize> =
        std::collections::HashMap::new();
    let visible = |sim_hidden: &[bool], store: &S, id: NodeId| -> bool {
        !sim_hidden[id.index()] && store.is_visible(id)
    };

    let mut plans = Vec::with_capacity(modules.len());
    for module in modules {
        let invocations = store.invocations_of(module);
        let mut hidden: Vec<NodeId> = Vec::new();

        // Steps 3-4: hide intermediates and state nodes of all
        // invocations of this module.
        for i in 0..n {
            let id = NodeId(i as u32);
            if !visible(&sim_hidden, store, id) {
                continue;
            }
            let hide = match store.role_of(id) {
                Role::Intermediate(inv) | Role::State(inv) => invocations.contains(&inv),
                _ => false,
            };
            if hide {
                sim_hidden[id.index()] = true;
                hidden.push(id);
            }
        }
        // Step 4 (second half): base tuple nodes that fed only
        // now-hidden nodes (a module's private initial-state tuples).
        for i in 0..n {
            let id = NodeId(i as u32);
            if !visible(&sim_hidden, store, id)
                || !matches!(store.kind_of(id), NodeKind::BaseTuple { .. })
            {
                continue;
            }
            let succs = store.succs_of(id);
            // Composite successors added by earlier modules in this
            // call are always visible, so their presence alone keeps
            // the tuple visible.
            let all_succs_hidden = sim_extra_succs.get(&id).copied().unwrap_or(0) == 0
                && !succs.is_empty()
                && succs.iter().all(|s| !visible(&sim_hidden, store, *s));
            if all_succs_hidden {
                sim_hidden[id.index()] = true;
                hidden.push(id);
            }
        }

        // Step 5: composite nodes. Collect every invocation's input and
        // output nodes in ONE pass over the graph (a per-invocation scan
        // would make ZoomOut quadratic on long execution histories).
        let mut io: std::collections::HashMap<InvocationId, (Vec<NodeId>, Vec<NodeId>)> =
            invocations
                .iter()
                .map(|&inv| (inv, (Vec::new(), Vec::new())))
                .collect();
        for i in 0..n {
            let id = NodeId(i as u32);
            if !visible(&sim_hidden, store, id) {
                continue;
            }
            match store.role_of(id) {
                Role::ModuleInput(inv) => {
                    if let Some((ins, _)) = io.get_mut(&inv) {
                        ins.push(id);
                    }
                }
                Role::ModuleOutput(inv) => {
                    if let Some((_, outs)) = io.get_mut(&inv) {
                        outs.push(id);
                    }
                }
                _ => {}
            }
        }
        let mut composites = Vec::with_capacity(invocations.len());
        for &inv in &invocations {
            let (inputs, outputs) = io.remove(&inv).unwrap_or_default();
            for i in &inputs {
                *sim_extra_succs.entry(*i).or_insert(0) += 1;
            }
            composites.push(CompositePlan {
                invocation: inv,
                inputs,
                outputs,
            });
        }
        plans.push(ZoomModulePlan {
            module: (*module).to_string(),
            hidden,
            composites,
        });
    }
    Ok(plans)
}

/// Apply a previously computed zoom plan to the resident graph.
/// Returns the composite zoom nodes created (one per invocation, in
/// invocation order).
pub fn apply_zoom_out(graph: &mut ProvGraph, plans: Vec<ZoomModulePlan>) -> Vec<NodeId> {
    let mut created = Vec::new();
    for plan in plans {
        for &id in &plan.hidden {
            graph.node_mut(id).zoom_hidden = true;
        }
        // Stash index is assigned below; nodes reference it by value.
        let stash_idx = graph.zoom_stash_count() as u32;
        let mut zoom_nodes = Vec::with_capacity(plan.composites.len());
        for comp in &plan.composites {
            let zoom = graph.add_node(
                NodeKind::Zoomed { stash: stash_idx },
                Role::Zoom(comp.invocation),
            );
            for &i in &comp.inputs {
                graph.add_edge(i, zoom);
            }
            for &o in &comp.outputs {
                graph.add_edge(zoom, o);
            }
            zoom_nodes.push(zoom);
        }
        created.extend(zoom_nodes.iter().copied());
        graph.push_stash(ZoomStash {
            module: plan.module,
            hidden: plan.hidden,
            zoom_nodes,
        });
    }
    created
}

/// Zoom out of the given modules, in place. Returns the composite zoom
/// nodes created (one per invocation, in invocation order).
///
/// Planning ([`plan_zoom_out`]) is separated from application so that
/// append-log backends can compute the identical plan against their
/// layered view and commit it as tail records; the resident path here
/// is simply plan-then-apply.
pub fn zoom_out(graph: &mut ProvGraph, modules: &[&str]) -> Result<Vec<NodeId>, QueryError> {
    let zoomed: Vec<String> = graph
        .zoomed_out_modules()
        .into_iter()
        .map(str::to_string)
        .collect();
    let plans = plan_zoom_out(graph, modules, &zoomed, graph.zoom_stash_count())?;
    Ok(apply_zoom_out(graph, plans))
}

/// Zoom back into the given modules, in place: restores the hidden
/// internals and retires the composite nodes.
pub fn zoom_in(graph: &mut ProvGraph, modules: &[&str]) -> Result<(), QueryError> {
    // A duplicate in the list would pass per-name validation against
    // the unmutated stash table and then panic on the second
    // take_stash; reject it up front as not-zoomed-out (the second
    // occurrence has nothing left to restore).
    let mut seen = std::collections::HashSet::new();
    for m in modules {
        if !seen.insert(*m) || !graph.zoomed_out_modules().contains(m) {
            return Err(QueryError::NotZoomedOut((*m).to_string()));
        }
    }
    for module in modules {
        let stash = graph
            .take_stash(module)
            .expect("validated above: module is zoomed out");
        for id in stash.hidden {
            graph.node_mut(id).zoom_hidden = false;
        }
        for z in stash.zoom_nodes {
            graph.unlink_and_delete(z);
            // Remap the dead stash index to the reserved sentinel so the
            // in-memory representation matches what the storage codec
            // round-trips (a genuine index would collide with the
            // on-disk retired-zoom tag otherwise).
            graph.node_mut(z).kind = NodeKind::Zoomed {
                stash: crate::graph::node::RETIRED_STASH,
            };
        }
    }
    Ok(())
}

impl ProvGraph {
    /// Number of stashes ever pushed (indices are stable).
    pub(crate) fn zoom_stash_count(&self) -> usize {
        self.stash_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::tracker::{GraphTracker, Tracker};
    use crate::graph::Role;

    /// Two invocations of M (sharing a state tuple) feeding one
    /// invocation of Agg.
    fn workflow_graph() -> (ProvGraph, Vec<NodeId>) {
        let mut t = GraphTracker::new();
        let wi = t.workflow_input("I1");
        let c2 = t.base("C2");
        let mut outputs = Vec::new();
        for exec in 0..2 {
            t.begin_invocation("M", exec);
            let i = t.module_input(wi);
            let s = t.state_node(c2);
            let join = t.times(&[i, s]);
            let o = t.module_output(join, &[]);
            t.end_invocation();
            outputs.push(o);
        }
        t.begin_invocation("Agg", 0);
        let i1 = t.module_input(outputs[0]);
        let i2 = t.module_input(outputs[1]);
        let best = t.plus(&[i1, i2]);
        let o = t.module_output(best, &[]);
        t.end_invocation();
        outputs.push(o);
        (t.finish(), outputs)
    }

    #[test]
    fn zoom_roundtrip_is_identity() {
        let (mut g, _) = workflow_graph();
        let before = g.visible_signature();
        zoom_out(&mut g, &["M"]).unwrap();
        assert_ne!(g.visible_signature(), before);
        zoom_in(&mut g, &["M"]).unwrap();
        assert_eq!(g.visible_signature(), before);
    }

    #[test]
    fn zoom_out_hides_internals_keeps_io() {
        let (mut g, _) = workflow_graph();
        zoom_out(&mut g, &["M"]).unwrap();
        for (_, n) in g.iter_visible() {
            assert!(
                !matches!(n.role, Role::Intermediate(inv) | Role::State(inv)
                    if g.invocation(inv).module == "M"),
                "internals of M must be hidden"
            );
        }
        // i/o/m nodes of M remain
        let m_inv = g.invocations_of("M")[0];
        assert!(g
            .iter_visible()
            .any(|(_, n)| n.role == Role::ModuleInput(m_inv)));
        assert!(g
            .iter_visible()
            .any(|(_, n)| n.role == Role::ModuleOutput(m_inv)));
        // shared state base tuple C2 is hidden (fed only M's state)
        assert!(g
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::BaseTuple { .. }))
            .all(|(_, n)| !n.is_visible()));
        // Agg internals untouched
        let agg_inv = g.invocations_of("Agg")[0];
        assert!(g
            .iter_visible()
            .any(|(_, n)| n.role == Role::Intermediate(agg_inv)));
    }

    #[test]
    fn zoom_out_creates_one_composite_per_invocation() {
        let (mut g, _) = workflow_graph();
        let zooms = zoom_out(&mut g, &["M"]).unwrap();
        assert_eq!(zooms.len(), 2);
        for z in zooms {
            let n = g.node(z);
            assert!(matches!(n.kind, NodeKind::Zoomed { .. }));
            assert_eq!(n.preds().len(), 1, "one input per invocation");
            assert_eq!(n.succs().len(), 1, "one output per invocation");
        }
    }

    #[test]
    fn zoom_out_all_modules_gives_coarse_grained_graph() {
        let (mut g, _) = workflow_graph();
        zoom_out(&mut g, &["M", "Agg"]).unwrap();
        // Coarse graph: only workflow inputs, m, i, o, zoom nodes remain.
        for (_, n) in g.iter_visible() {
            assert!(
                matches!(
                    n.kind,
                    NodeKind::WorkflowInput { .. }
                        | NodeKind::Invocation
                        | NodeKind::ModuleInput
                        | NodeKind::ModuleOutput
                        | NodeKind::Zoomed { .. }
                ),
                "unexpected visible kind {:?}",
                n.kind
            );
        }
    }

    #[test]
    fn double_zoom_out_rejected() {
        let (mut g, _) = workflow_graph();
        zoom_out(&mut g, &["M"]).unwrap();
        assert_eq!(
            zoom_out(&mut g, &["M"]),
            Err(QueryError::AlreadyZoomedOut("M".into()))
        );
    }

    #[test]
    fn zoom_in_without_zoom_out_rejected() {
        let (mut g, _) = workflow_graph();
        assert_eq!(
            zoom_in(&mut g, &["M"]),
            Err(QueryError::NotZoomedOut("M".into()))
        );
    }

    #[test]
    fn duplicate_modules_in_one_call_rejected_atomically() {
        let (mut g, _) = workflow_graph();
        let before = g.visible_signature();
        assert_eq!(
            zoom_out(&mut g, &["M", "M"]),
            Err(QueryError::AlreadyZoomedOut("M".into()))
        );
        assert_eq!(g.visible_signature(), before, "failed zoom must not mutate");
        zoom_out(&mut g, &["M"]).unwrap();
        // Duplicate ZoomIn must error (not panic on the second stash take).
        assert_eq!(
            zoom_in(&mut g, &["M", "M"]),
            Err(QueryError::NotZoomedOut("M".into()))
        );
        zoom_in(&mut g, &["M"]).unwrap();
        assert_eq!(g.visible_signature(), before);
    }

    #[test]
    fn unknown_module_rejected_atomically() {
        let (mut g, _) = workflow_graph();
        let before = g.visible_signature();
        assert_eq!(
            zoom_out(&mut g, &["M", "Nope"]),
            Err(QueryError::UnknownModule("Nope".into()))
        );
        assert_eq!(g.visible_signature(), before, "failed zoom must not mutate");
    }

    #[test]
    fn interleaved_zoom_of_two_modules() {
        let (mut g, _) = workflow_graph();
        let before = g.visible_signature();
        zoom_out(&mut g, &["M"]).unwrap();
        zoom_out(&mut g, &["Agg"]).unwrap();
        zoom_in(&mut g, &["M"]).unwrap();
        zoom_in(&mut g, &["Agg"]).unwrap();
        assert_eq!(g.visible_signature(), before);
    }

    #[test]
    fn coarse_expr_still_spans_module_boundary() {
        let (mut g, outputs) = workflow_graph();
        zoom_out(&mut g, &["M"]).unwrap();
        let e = g.expr_of(outputs[2]).to_string();
        // The workflow input is still an ancestor through the zoom node.
        assert!(e.contains("I1"), "expr was {e}");
        // But the hidden state tuple is not.
        assert!(!e.contains("C2"), "expr was {e}");
    }
}
