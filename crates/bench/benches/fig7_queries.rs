//! Figure 7 + §5.6 "Delete": query processing over provenance graphs.
//!
//! 7(a): ZoomOut / ZoomIn per module (dealer vs aggregate; zoom time
//!       linear in graph size, aggregate cheaper, ZoomIn faster).
//! 7(b): subgraph queries from the highest-fanout nodes.
//! 7(c): subgraph queries across Arctic selectivities.
//! del:  deletion propagation (sub-millisecond in most cases).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lipstick_bench::{run_arctic, run_dealers};
use lipstick_core::query::{propagate_deletion, subgraph, zoom_in, zoom_out};
use lipstick_workflowgen::{ArcticParams, DealersParams, Selectivity, Topology};

fn dealers_graph(num_exec: usize) -> lipstick_core::ProvGraph {
    let params = DealersParams {
        num_cars: 400,
        num_exec,
        seed: 1_000_003,
    };
    run_dealers(&params, true).graph.expect("tracking on")
}

fn fig7a_zoom(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_zoom");
    group.sample_size(10);
    for num_exec in [5usize, 10, 20] {
        let g = dealers_graph(num_exec);
        for module in ["Mdealer1", "Magg"] {
            group.bench_with_input(
                BenchmarkId::new(format!("zoomout_{module}"), g.len()),
                &g,
                |b, g| {
                    b.iter_batched(
                        || g.clone(),
                        |mut g| zoom_out(&mut g, &[module]).expect("zoom"),
                        BatchSize::LargeInput,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("zoomin_{module}"), g.len()),
                &g,
                |b, g| {
                    b.iter_batched(
                        || {
                            let mut g = g.clone();
                            zoom_out(&mut g, &[module]).expect("zoom");
                            g
                        },
                        |mut g| zoom_in(&mut g, &[module]).expect("zoom in"),
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

fn fig7b_subgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_subgraph");
    group.sample_size(10);
    let g = dealers_graph(20);
    let roots = g.top_fanout_nodes(8);
    for (i, root) in roots.into_iter().enumerate() {
        group.bench_with_input(BenchmarkId::from_parameter(i), &root, |b, &root| {
            b.iter(|| subgraph(&g, root).expect("visible").len())
        });
    }
    group.finish();
}

fn fig7c_subgraph_arctic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7c_subgraph_arctic");
    group.sample_size(10);
    for (name, selectivity) in [
        ("all", Selectivity::All),
        ("month", Selectivity::Month),
        ("year", Selectivity::Year),
    ] {
        let params = ArcticParams {
            stations: 12,
            topology: Topology::Dense { fanout: 3 },
            selectivity,
            num_exec: 5,
            seed: 7,
        };
        let g = run_arctic(&params, true).graph.expect("tracking on");
        let roots = g.top_fanout_nodes(4);
        group.bench_with_input(BenchmarkId::from_parameter(name), &roots, |b, roots| {
            b.iter(|| {
                roots
                    .iter()
                    .map(|&r| subgraph(&g, r).expect("visible").len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn delete_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp_del_deletion");
    group.sample_size(10);
    let g = dealers_graph(20);
    let roots = g.top_fanout_nodes(4);
    for (i, root) in roots.into_iter().enumerate() {
        group.bench_with_input(BenchmarkId::from_parameter(i), &root, |b, &root| {
            b.iter(|| {
                propagate_deletion(&g, root)
                    .expect("visible")
                    .1
                    .deleted
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig7a_zoom,
    fig7b_subgraph,
    fig7c_subgraph_arctic,
    delete_queries
);
criterion_main!(benches);
