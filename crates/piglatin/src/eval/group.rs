//! GROUP / COGROUP with δ provenance.
//!
//! "For each tuple t in the result of GROUP A BY f, create a p-node
//! labeled δ, with incoming edges from the p-nodes v₁…vₖ corresponding
//! to tuples in A that have the same grouping attribute value" (§3.2).
//! Member tuples keep their original annotations inside the nested bag
//! so later aggregation can build ⊗ tensors.

use std::collections::HashMap;
use std::sync::Arc;

use lipstick_core::Tracker;
use lipstick_nrel::{Bag, Schema, Tuple, Value};

use crate::error::Result;
use crate::expr::CExpr;

use super::context::{ARelation, ATuple, Ann};

/// Evaluate grouping keys for one tuple: a single expression yields its
/// value; several yield a tuple.
pub(crate) fn key_tuple(keys: &[CExpr], tuple: &Tuple) -> Result<Value> {
    if keys.len() == 1 {
        Ok(keys[0].eval(tuple)?)
    } else {
        let mut vals = Vec::with_capacity(keys.len());
        for k in keys {
            vals.push(k.eval(tuple)?);
        }
        Ok(Value::Tuple(Tuple::new(vals)))
    }
}

/// `GROUP input BY keys` / `GROUP input ALL` (keys = `None`).
pub fn eval_group<T: Tracker>(
    input: &ARelation<T::Ref>,
    keys: Option<&[CExpr]>,
    out_schema: Arc<Schema>,
    tracker: &mut T,
) -> Result<ARelation<T::Ref>> {
    // Group rows by key, preserving first-occurrence order for
    // deterministic output.
    let mut order: Vec<Value> = Vec::new();
    let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
    for (idx, row) in input.rows.iter().enumerate() {
        let key = match keys {
            None => Value::str("all"),
            Some(ks) => key_tuple(ks, &row.tuple)?,
        };
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key);
                Vec::new()
            })
            .push(idx);
    }

    let mut out = ARelation::empty(out_schema);
    for key in order {
        let idxs = &groups[&key];
        let mut bag = Bag::empty();
        let mut anns = Vec::with_capacity(idxs.len());
        let mut provs = Vec::with_capacity(idxs.len());
        for &i in idxs {
            let row = &input.rows[i];
            bag.push(row.tuple.clone());
            if T::TRACKING {
                anns.push(row.ann.clone());
                provs.push(row.ann.prov);
            }
        }
        let prov = tracker.delta(&provs);
        out.rows.push(ATuple {
            tuple: Tuple::new(vec![key, Value::Bag(bag)]),
            ann: Ann::plain(prov),
            members: if T::TRACKING {
                vec![(1u16, Arc::new(anns))]
            } else {
                Vec::new()
            },
        });
    }
    Ok(out)
}

/// `COGROUP a BY k₁, b BY k₂, …`: one output tuple per key occurring in
/// any input, with one nested bag per input; δ over all members.
pub fn eval_cogroup<T: Tracker>(
    inputs: &[(&ARelation<T::Ref>, &[CExpr])],
    out_schema: Arc<Schema>,
    tracker: &mut T,
) -> Result<ARelation<T::Ref>> {
    let n = inputs.len();
    let mut order: Vec<Value> = Vec::new();
    // key → per-input row indices
    let mut groups: HashMap<Value, Vec<Vec<usize>>> = HashMap::new();
    for (input_idx, (rel, keys)) in inputs.iter().enumerate() {
        for (row_idx, row) in rel.rows.iter().enumerate() {
            let key = key_tuple(keys, &row.tuple)?;
            groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                vec![Vec::new(); n]
            })[input_idx]
                .push(row_idx);
        }
    }

    let mut out = ARelation::empty(out_schema);
    for key in order {
        let per_input = &groups[&key];
        let mut fields = Vec::with_capacity(1 + n);
        fields.push(key);
        let mut members = Vec::new();
        let mut provs = Vec::new();
        for (input_idx, idxs) in per_input.iter().enumerate() {
            let rel = inputs[input_idx].0;
            let mut bag = Bag::empty();
            let mut anns = Vec::with_capacity(idxs.len());
            for &i in idxs {
                let row = &rel.rows[i];
                bag.push(row.tuple.clone());
                if T::TRACKING {
                    anns.push(row.ann.clone());
                    provs.push(row.ann.prov);
                }
            }
            fields.push(Value::Bag(bag));
            if T::TRACKING {
                members.push(((1 + input_idx) as u16, Arc::new(anns)));
            }
        }
        let prov = tracker.delta(&provs);
        out.rows.push(ATuple {
            tuple: Tuple::new(fields),
            ann: Ann::plain(prov),
            members,
        });
    }
    Ok(out)
}
