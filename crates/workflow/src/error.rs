//! Workflow errors.

use std::fmt;

use lipstick_piglatin::PigError;

/// Errors raised while validating or executing workflows.
#[derive(Debug, Clone, PartialEq)]
pub enum WfError {
    /// The workflow graph contains a cycle.
    Cyclic,
    /// The workflow graph is not connected.
    Disconnected,
    /// An edge references a relation missing from an endpoint schema.
    BadEdge {
        from: String,
        to: String,
        relation: String,
        reason: String,
    },
    /// Two incoming edges of a node carry the same relation name.
    DuplicateIncoming { node: String, relation: String },
    /// A non-input node's input schema is not covered by incoming edges.
    UncoveredInput { node: String, relation: String },
    /// An input node received no workflow input for a relation.
    MissingWorkflowInput { node: String, relation: String },
    /// Module instance names must be unique.
    DuplicateInstance(String),
    /// A module's script failed.
    Pig { node: String, error: PigError },
    /// A module script did not produce a declared output relation.
    MissingOutput { node: String, relation: String },
    /// Referenced node does not exist.
    UnknownNode(String),
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::Cyclic => write!(f, "workflow graph is cyclic"),
            WfError::Disconnected => write!(f, "workflow graph is not connected"),
            WfError::BadEdge {
                from,
                to,
                relation,
                reason,
            } => write!(f, "edge {from}→{to} relation '{relation}': {reason}"),
            WfError::DuplicateIncoming { node, relation } => write!(
                f,
                "node '{node}' receives relation '{relation}' from two incoming edges"
            ),
            WfError::UncoveredInput { node, relation } => write!(
                f,
                "node '{node}' input relation '{relation}' is not supplied by any incoming edge"
            ),
            WfError::MissingWorkflowInput { node, relation } => write!(
                f,
                "input node '{node}' got no workflow input for relation '{relation}'"
            ),
            WfError::DuplicateInstance(n) => {
                write!(f, "duplicate module instance name '{n}'")
            }
            WfError::Pig { node, error } => write!(f, "module '{node}': {error}"),
            WfError::MissingOutput { node, relation } => write!(
                f,
                "module '{node}' did not produce declared output relation '{relation}'"
            ),
            WfError::UnknownNode(n) => write!(f, "unknown workflow node '{n}'"),
        }
    }
}

impl std::error::Error for WfError {}

/// Result alias for this crate.
pub type Result<T, E = WfError> = std::result::Result<T, E>;
