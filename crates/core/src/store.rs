//! The [`GraphStore`] abstraction: "resident graph" vs. "paged log".
//!
//! [`ProvGraph`] holds every node in memory; a paged provenance log
//! (see `lipstick-storage`) keeps records on disk and faults them in on
//! demand. Queries that only touch a neighbourhood — module-filtered
//! `MATCH`, `WHY`, bounded traversals, dependency tests — should not
//! care which backing they run against, so this module defines the
//! common read-only interface plus store-generic implementations of the
//! traversal primitives the ProQL executor composes.
//!
//! Accessors return *owned* data (a paged store decodes records into
//! temporaries; it cannot hand out references into an arena it does not
//! have). The resident implementation clones adjacency lists, which is
//! fine for the per-query paths that use this trait; the hot resident
//! executor keeps using [`ProvGraph`]'s borrowing API directly.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::graph::bitset::BitSet;
use crate::graph::{InvocationId, InvocationInfo, NodeId, NodeKind, ProvGraph, Role};
use crate::query::error::QueryError;
use crate::query::subgraph::{Direction, SubgraphResult, TraversalStats};
use crate::semiring::{ProvExpr, Token};

/// Read-only access to a provenance graph, resident or paged.
///
/// Implementations must agree with [`ProvGraph`]'s semantics: ids are
/// dense `0..node_count`, `preds`/`succs` may include invisible
/// neighbours (callers filter), and the invocation table is small
/// enough to keep resident.
pub trait GraphStore {
    /// Number of allocated nodes (including tombstones).
    fn node_count(&self) -> usize;

    /// Is the node part of the visible graph? Must not require decoding
    /// the node's record on paged stores (visibility is index-level).
    fn is_visible(&self, id: NodeId) -> bool;

    /// The node's kind. May fault in the node's record.
    fn kind_of(&self, id: NodeId) -> NodeKind;

    /// The node's role. May fault in the node's record.
    fn role_of(&self, id: NodeId) -> Role;

    /// Ingredient ids (may include invisible nodes). May fault in the
    /// node's record.
    fn preds_of(&self, id: NodeId) -> Vec<NodeId>;

    /// Dependent ids (may include invisible nodes). Index-level on
    /// paged stores: must not require decoding the node's record.
    fn succs_of(&self, id: NodeId) -> Vec<NodeId>;

    /// The invocation table (always resident).
    fn invocations(&self) -> &[InvocationInfo];

    /// Invocation metadata.
    fn invocation(&self, id: InvocationId) -> &InvocationInfo {
        &self.invocations()[id.index()]
    }

    /// Ids of all invocations of the given module.
    fn invocations_of(&self, module: &str) -> Vec<InvocationId> {
        self.invocations()
            .iter()
            .enumerate()
            .filter(|(_, info)| info.module == module)
            .map(|(i, _)| InvocationId(i as u32))
            .collect()
    }

    /// Cumulative count of node records decoded so far (0 for resident
    /// stores, where nothing is ever faulted).
    fn records_read(&self) -> usize {
        0
    }

    /// Visible node ids owned by the module's invocations, if the store
    /// maintains postings for them (`None` = not indexed; scan instead).
    fn module_postings(&self, _module: &str) -> Option<Vec<NodeId>> {
        None
    }

    /// Visible node ids of the given kind name (see [`NodeKind::name`]),
    /// if the store maintains postings for them.
    fn kind_postings(&self, _kind: &str) -> Option<Vec<NodeId>> {
        None
    }

    /// Named heap components of the store itself (the
    /// [`crate::obs::HeapSize`] breakdown, surfaced through the trait so
    /// store-generic code — the `STATS` memory section — works on any
    /// backend). Empty when the store does not account its memory.
    fn memory_breakdown(&self) -> Vec<(&'static str, usize)> {
        Vec::new()
    }
}

impl GraphStore for ProvGraph {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn is_visible(&self, id: NodeId) -> bool {
        self.node(id).is_visible()
    }

    fn kind_of(&self, id: NodeId) -> NodeKind {
        self.node(id).kind.clone()
    }

    fn role_of(&self, id: NodeId) -> Role {
        self.node(id).role
    }

    fn preds_of(&self, id: NodeId) -> Vec<NodeId> {
        self.node(id).preds().to_vec()
    }

    fn succs_of(&self, id: NodeId) -> Vec<NodeId> {
        self.node(id).succs().to_vec()
    }

    fn invocations(&self) -> &[InvocationInfo] {
        ProvGraph::invocations(self)
    }

    fn memory_breakdown(&self) -> Vec<(&'static str, usize)> {
        crate::obs::HeapSize::heap_breakdown(self)
    }
}

/// Store-generic breadth-first sweep from `root`, at most `depth` edges
/// deep (`None` = unbounded). Mirrors
/// [`crate::query::subgraph::traverse`]: every visible node reached is
/// visited and counted; only those passing `collect` are returned; the
/// root is visited but never collected. The callback receives only the
/// id — querying the store for kind/role is what makes a paged walk
/// fault records *only* when the filter needs them.
pub fn traverse_store<S: GraphStore + ?Sized>(
    store: &S,
    root: NodeId,
    direction: Direction,
    depth: Option<u32>,
    mut collect: impl FnMut(NodeId) -> bool,
) -> Result<(Vec<NodeId>, TraversalStats), QueryError> {
    if !store.is_visible(root) {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut seen = BitSet::new(store.node_count());
    seen.insert(root.index());
    let mut out = Vec::new();
    let mut stats = TraversalStats { visited: 1 };
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    queue.push_back((root, 0));
    while let Some((v, d)) = queue.pop_front() {
        if let Some(limit) = depth {
            if d >= limit {
                continue;
            }
        }
        let next = match direction {
            Direction::Ancestors => store.preds_of(v),
            Direction::Descendants => store.succs_of(v),
        };
        for n in next {
            if store.is_visible(n) && seen.insert(n.index()) {
                stats.visited += 1;
                if collect(n) {
                    out.push(n);
                }
                queue.push_back((n, d + 1));
            }
        }
    }
    out.sort();
    Ok((out, stats))
}

/// Store-generic subgraph query (paper §5.1): ancestors, descendants,
/// and siblings of descendants. Agrees with
/// [`crate::query::subgraph::subgraph`] node-for-node.
pub fn subgraph_store<S: GraphStore + ?Sized>(
    store: &S,
    root: NodeId,
) -> Result<SubgraphResult, QueryError> {
    if !store.is_visible(root) {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut members = BitSet::new(store.node_count());
    members.insert(root.index());

    let (ancestors, _) = traverse_store(store, root, Direction::Ancestors, None, |_| true)?;
    let (descendants, _) = traverse_store(store, root, Direction::Descendants, None, |_| true)?;
    for id in ancestors.iter().chain(descendants.iter()) {
        members.insert(id.index());
    }
    // Siblings of descendants: other successors of each descendant's
    // visible predecessors.
    for d in &descendants {
        for p in store.preds_of(*d) {
            if !store.is_visible(p) {
                continue;
            }
            for sib in store.succs_of(p) {
                if store.is_visible(sib) {
                    members.insert(sib.index());
                }
            }
        }
    }
    Ok(SubgraphResult {
        nodes: members.iter().map(|i| NodeId(i as u32)).collect(),
        ancestor_count: ancestors.len(),
        descendant_count: descendants.len(),
    })
}

/// Store-generic deletion-propagation set (Definition 4.2), without
/// mutating anything: which nodes die if `root` is deleted? Only the
/// descendants the propagation actually examines are faulted in.
pub fn compute_deletion_store<S: GraphStore + ?Sized>(
    store: &S,
    root: NodeId,
) -> Result<Vec<NodeId>, QueryError> {
    if !store.is_visible(root) {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut deleted = BitSet::new(store.node_count());
    let mut order: Vec<NodeId> = Vec::new();
    let mut queue: Vec<NodeId> = vec![root];
    deleted.insert(root.index());
    while let Some(v) = queue.pop() {
        order.push(v);
        for s in store.succs_of(v) {
            if !store.is_visible(s) || deleted.contains(s.index()) {
                continue;
            }
            let dies = if store.kind_of(s).is_joint() {
                true
            } else {
                store
                    .preds_of(s)
                    .iter()
                    .filter(|p| store.is_visible(**p))
                    .all(|p| deleted.contains(p.index()))
            };
            if dies {
                deleted.insert(s.index());
                queue.push(s);
            }
        }
    }
    Ok(order)
}

/// Store-generic dependency test (§4.3): does the existence of `n`
/// depend on `n_prime`? Agrees with [`crate::query::depends_on`].
pub fn depends_on_store<S: GraphStore + ?Sized>(
    store: &S,
    n: NodeId,
    n_prime: NodeId,
) -> Result<bool, QueryError> {
    if !store.is_visible(n) {
        return Err(QueryError::NodeNotVisible(n));
    }
    let deleted = compute_deletion_store(store, n_prime)?;
    Ok(deleted.contains(&n))
}

/// Store-generic provenance-expression extraction: the symbolic
/// expression rooted at a p-node, following only visible p-node
/// ingredients. Agrees with [`ProvGraph::expr_of`] (which delegates
/// here).
pub fn expr_of_store<S: GraphStore + ?Sized>(store: &S, id: NodeId) -> ProvExpr {
    let mut memo: HashMap<NodeId, ProvExpr> = HashMap::new();
    expr_rec_store(store, id, &mut memo)
}

fn expr_rec_store<S: GraphStore + ?Sized>(
    store: &S,
    id: NodeId,
    memo: &mut HashMap<NodeId, ProvExpr>,
) -> ProvExpr {
    if let Some(e) = memo.get(&id) {
        return e.clone();
    }
    let kind = store.kind_of(id);
    let pred_exprs = |store: &S, memo: &mut HashMap<NodeId, ProvExpr>| {
        store
            .preds_of(id)
            .into_iter()
            .filter(|p| {
                // Hidden/deleted ingredients no longer contribute, and
                // v-nodes contribute to values rather than to tuple
                // provenance.
                store.is_visible(*p) && !store.kind_of(*p).is_value_node()
            })
            .map(|p| expr_rec_store(store, p, memo))
            .collect::<Vec<_>>()
    };
    let expr = match &kind {
        NodeKind::WorkflowInput { token } | NodeKind::BaseTuple { token } => {
            ProvExpr::Tok(token.clone())
        }
        NodeKind::Invocation => {
            let inv = store
                .role_of(id)
                .invocation()
                .expect("invocation node has inv");
            let info = store.invocation(inv);
            ProvExpr::Tok(Token::new(format!("⟨{}#{}⟩", info.module, info.execution)))
        }
        NodeKind::Plus => ProvExpr::sum(pred_exprs(store, memo)),
        NodeKind::Times
        | NodeKind::ModuleInput
        | NodeKind::ModuleOutput
        | NodeKind::StateUnit
        | NodeKind::Zoomed { .. }
        | NodeKind::BlackBox { .. } => ProvExpr::prod(pred_exprs(store, memo)),
        NodeKind::Delta => ProvExpr::delta(ProvExpr::sum(pred_exprs(store, memo))),
        // v-nodes have no tuple provenance of their own.
        NodeKind::AggResult { .. } | NodeKind::Tensor | NodeKind::Const { .. } => ProvExpr::One,
    };
    memo.insert(id, expr.clone());
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ancestors_bounded, depends_on, descendants_bounded, subgraph, Direction};

    fn sample() -> ProvGraph {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let c = g.add_base("c");
        let t = g.add_times(&[a, b]);
        let p = g.add_plus(&[t, c]);
        let d = g.add_delta(&[p]);
        g.add_plus(&[d]);
        g
    }

    #[test]
    fn traverse_store_matches_resident_traversals() {
        let g = sample();
        for (id, _) in g.iter_visible() {
            for depth in [None, Some(1), Some(2)] {
                let resident = descendants_bounded(&g, id, depth).unwrap();
                let (nodes, stats) =
                    traverse_store(&g, id, Direction::Descendants, depth, |_| true).unwrap();
                assert_eq!(nodes, resident.nodes, "descendants of {id}");
                assert_eq!(stats, resident.stats);
                let resident = ancestors_bounded(&g, id, depth).unwrap();
                let (nodes, _) =
                    traverse_store(&g, id, Direction::Ancestors, depth, |_| true).unwrap();
                assert_eq!(nodes, resident.nodes, "ancestors of {id}");
            }
        }
    }

    #[test]
    fn subgraph_store_matches_resident() {
        let g = sample();
        for (id, _) in g.iter_visible() {
            let resident = subgraph(&g, id).unwrap();
            let generic = subgraph_store(&g, id).unwrap();
            assert_eq!(generic, resident, "subgraph of {id}");
        }
    }

    #[test]
    fn depends_on_store_matches_resident() {
        let g = sample();
        let ids: Vec<NodeId> = g.iter_visible().map(|(id, _)| id).collect();
        for &n in &ids {
            for &m in &ids {
                assert_eq!(
                    depends_on_store(&g, n, m).unwrap(),
                    depends_on(&g, n, m).unwrap(),
                    "depends({n}, {m})"
                );
            }
        }
    }

    #[test]
    fn expr_of_store_matches_resident() {
        let g = sample();
        for (id, n) in g.iter_visible() {
            if !n.kind.is_value_node() {
                assert_eq!(expr_of_store(&g, id).to_string(), g.expr_of(id).to_string());
            }
        }
    }

    #[test]
    fn traversal_on_invisible_root_errors() {
        let mut g = sample();
        let root = NodeId(0);
        g.set_node_deleted(root, true);
        assert!(traverse_store(&g, root, Direction::Descendants, None, |_| true).is_err());
        assert!(subgraph_store(&g, root).is_err());
        assert!(compute_deletion_store(&g, root).is_err());
    }
}
