//! Nested relational schemas.
//!
//! A [`Schema`] describes the tuples of a relation: an ordered list of
//! [`Field`]s, each with an optional name and a [`DataType`]. Nested bags
//! and tuples carry their own schemas, mirroring the paper's use of nested
//! relations (e.g. `CarsByModel(Model, Inventory: bag{...})`).

use std::fmt;
use std::sync::Arc;

use crate::error::{NrelError, Result};
use crate::value::{Tuple, Value};

/// The type of a field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Any type; used where Pig leaves fields untyped (e.g. UDF outputs).
    Any,
    Bool,
    Int,
    Float,
    /// UTF-8 string (Pig chararray).
    Str,
    /// Nested tuple with its own schema.
    Tuple(Arc<Schema>),
    /// Nested bag of tuples with the given tuple schema.
    Bag(Arc<Schema>),
    /// String-keyed map with unconstrained value types.
    Map,
}

impl DataType {
    /// Does `value` conform to this type? `Null` conforms to everything
    /// (nullable model), and `Any` accepts everything.
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) | (DataType::Any, _) => true,
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Int, Value::Int(_)) => true,
            // Numeric widening: an int is acceptable where a float is
            // expected (Pig promotes silently).
            (DataType::Float, Value::Float(_)) | (DataType::Float, Value::Int(_)) => true,
            (DataType::Str, Value::Str(_)) => true,
            (DataType::Tuple(s), Value::Tuple(t)) => s.admits_tuple(t).is_ok(),
            (DataType::Bag(s), Value::Bag(b)) => b.iter().all(|t| s.admits_tuple(t).is_ok()),
            (DataType::Map, Value::Map(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Any => write!(f, "any"),
            DataType::Bool => write!(f, "boolean"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "double"),
            DataType::Str => write!(f, "chararray"),
            DataType::Tuple(s) => write!(f, "tuple{s}"),
            DataType::Bag(s) => write!(f, "bag{{{s}}}"),
            DataType::Map => write!(f, "map[]"),
        }
    }
}

/// One field of a schema: optional name plus type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name; `None` for anonymous fields (e.g. generated expressions
    /// without an `AS` clause).
    pub name: Option<String>,
    /// Field type.
    pub dtype: DataType,
}

impl Field {
    /// Named field.
    pub fn named(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: Some(name.into()),
            dtype,
        }
    }

    /// Anonymous field.
    pub fn anon(dtype: DataType) -> Self {
        Field { name: None, dtype }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}: {}", self.dtype),
            None => write!(f, "{}", self.dtype),
        }
    }
}

/// A tuple/relation schema: ordered fields with optional names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Shorthand: all-named fields of the given types.
    pub fn named(fields: &[(&str, DataType)]) -> Self {
        Schema {
            fields: fields
                .iter()
                .map(|(n, t)| Field::named(*n, t.clone()))
                .collect(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field by position.
    pub fn field(&self, idx: usize) -> Result<&Field> {
        self.fields.get(idx).ok_or(NrelError::FieldOutOfRange {
            index: idx,
            arity: self.fields.len(),
        })
    }

    /// Resolve a field name to its position.
    ///
    /// Names resolve exactly; as in Pig, a join-qualified name such as
    /// `Cars::Model` also matches a lookup for its unqualified suffix
    /// `Model` when that suffix is unambiguous.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        // Exact match first.
        if let Some(i) = self
            .fields
            .iter()
            .position(|f| f.name.as_deref() == Some(name))
        {
            return Ok(i);
        }
        // Suffix match on qualified names (`rel::field`).
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let n = f.name.as_deref()?;
                let suffix = n.rsplit("::").next()?;
                (suffix == name).then_some(i)
            })
            .collect();
        match matches.as_slice() {
            [only] => Ok(*only),
            [] => Err(NrelError::UnknownField {
                name: name.to_string(),
                schema: self.to_string(),
            }),
            _ => Err(NrelError::AmbiguousField {
                name: name.to_string(),
                schema: self.to_string(),
            }),
        }
    }

    /// Check that a tuple conforms to this schema (arity + field types).
    pub fn admits_tuple(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(NrelError::ArityMismatch {
                expected: self.arity(),
                found: tuple.arity(),
            });
        }
        for (i, (f, v)) in self.fields.iter().zip(tuple.fields()).enumerate() {
            if !f.dtype.admits(v) {
                return Err(NrelError::FieldTypeMismatch {
                    index: i,
                    expected: f.dtype.to_string(),
                    found: v.type_name(),
                });
            }
        }
        Ok(())
    }

    /// Concatenate two schemas, qualifying clashing names is the caller's
    /// responsibility (the planner qualifies join outputs with `rel::`).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// A copy of this schema with every field name qualified as
    /// `prefix::name` (anonymous fields stay anonymous).
    pub fn qualified(&self, prefix: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field {
                    name: f.name.as_ref().map(|n| format!("{prefix}::{n}")),
                    dtype: f.dtype.clone(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bag;

    fn cars_schema() -> Schema {
        Schema::named(&[("CarId", DataType::Str), ("Model", DataType::Str)])
    }

    #[test]
    fn resolve_exact_and_qualified() {
        let s = Schema::named(&[
            ("Cars::Model", DataType::Str),
            ("ReqModel::Other", DataType::Str),
        ]);
        assert_eq!(s.resolve("Cars::Model").unwrap(), 0);
        assert_eq!(s.resolve("Model").unwrap(), 0);
        assert_eq!(s.resolve("Other").unwrap(), 1);
    }

    #[test]
    fn resolve_ambiguous_suffix_fails() {
        let s = Schema::named(&[
            ("Cars::Model", DataType::Str),
            ("ReqModel::Model", DataType::Str),
        ]);
        assert!(matches!(
            s.resolve("Model"),
            Err(NrelError::AmbiguousField { .. })
        ));
        // but qualified stays resolvable
        assert_eq!(s.resolve("ReqModel::Model").unwrap(), 1);
    }

    #[test]
    fn resolve_unknown_fails() {
        let s = cars_schema();
        assert!(matches!(
            s.resolve("Price"),
            Err(NrelError::UnknownField { .. })
        ));
    }

    #[test]
    fn admits_tuple_checks_types() {
        let s = cars_schema();
        let ok = Tuple::new(vec![Value::str("C1"), Value::str("Civic")]);
        assert!(s.admits_tuple(&ok).is_ok());
        let bad = Tuple::new(vec![Value::Int(1), Value::str("Civic")]);
        assert!(s.admits_tuple(&bad).is_err());
        let short = Tuple::new(vec![Value::str("C1")]);
        assert!(matches!(
            s.admits_tuple(&short),
            Err(NrelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn nulls_admitted_everywhere() {
        let s = cars_schema();
        let t = Tuple::new(vec![Value::Null, Value::Null]);
        assert!(s.admits_tuple(&t).is_ok());
    }

    #[test]
    fn int_widens_to_float() {
        let s = Schema::named(&[("x", DataType::Float)]);
        assert!(s.admits_tuple(&Tuple::new(vec![Value::Int(3)])).is_ok());
    }

    #[test]
    fn nested_bag_admission() {
        let inner = Arc::new(Schema::named(&[("v", DataType::Int)]));
        let s = Schema::new(vec![Field::named("grp", DataType::Bag(inner))]);
        let good = Tuple::new(vec![Value::Bag(Bag::from_tuples(vec![Tuple::new(vec![
            Value::Int(1),
        ])]))]);
        assert!(s.admits_tuple(&good).is_ok());
        let bad = Tuple::new(vec![Value::Bag(Bag::from_tuples(vec![Tuple::new(vec![
            Value::str("not an int"),
        ])]))]);
        assert!(s.admits_tuple(&bad).is_err());
    }

    #[test]
    fn qualification_and_concat() {
        let s = cars_schema().qualified("Cars");
        assert_eq!(s.resolve("Cars::CarId").unwrap(), 0);
        let joined = s.concat(&cars_schema().qualified("ReqModel"));
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined.resolve("ReqModel::CarId").unwrap(), 2);
    }

    #[test]
    fn display_renders_nested() {
        let inner = Arc::new(Schema::named(&[("v", DataType::Int)]));
        let s = Schema::new(vec![
            Field::named("g", DataType::Str),
            Field::named("items", DataType::Bag(inner)),
        ]);
        assert_eq!(s.to_string(), "(g: chararray, items: bag{(v: int)})");
    }
}
