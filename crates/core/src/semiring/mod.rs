//! The semiring provenance framework (paper §2.3).
//!
//! Input tuples are annotated with *provenance tokens* drawn from a set X.
//! Query evaluation combines annotations with `+` (alternative derivation:
//! union, projection) and `·` (joint derivation: join, product), yielding
//! elements of the free commutative semiring N\[X\] — provenance
//! polynomials. Two extensions from the paper's foundations:
//!
//! - **δ** (delta): a unary duplicate-elimination operator annotating
//!   group-by / DISTINCT results with `δ(t₁ + … + tₙ)`;
//! - **⊗** (tensor): aggregate results are *values with provenance*,
//!   formal sums `Σᵢ tᵢ ⊗ vᵢ` pairing each aggregated value with the
//!   provenance of its tuple (see [`crate::agg`]).
//!
//! [`ProvExpr`] is the symbolic expression tree; [`Polynomial`] its
//! canonical N\[X\] normal form (for δ-free expressions). The
//! [`Semiring`] trait plus [`eval::eval_expr`] realize the framework's
//! central theorem — evaluation commutes with semiring homomorphisms — so
//! the same expression can be specialized to a count, a boolean, a cost,
//! a lineage set, or why-provenance.

pub mod boolean;
pub mod delta;
pub mod eval;
pub mod expr;
pub mod lineage;
pub mod natural;
pub mod polynomial;
pub mod tropical;
pub mod whyprov;

pub use expr::{ProvExpr, Token};
pub use polynomial::{Monomial, Polynomial};

/// A commutative semiring (K, +, ·, 0, 1).
///
/// Laws (verified by property tests for every implementation in this
/// crate):
///
/// - `(K, +, 0)` is a commutative monoid;
/// - `(K, ·, 1)` is a commutative monoid;
/// - `·` distributes over `+`;
/// - `0` annihilates: `0 · a = 0`.
pub trait Semiring: Clone + PartialEq + std::fmt::Debug {
    /// The additive identity; annotates absent tuples.
    fn zero() -> Self;
    /// The multiplicative identity; annotates tuples whose provenance is
    /// not tracked.
    fn one() -> Self;
    /// Alternative use of data (union / projection collapse).
    fn plus(&self, other: &Self) -> Self;
    /// Joint use of data (join / cartesian product).
    fn times(&self, other: &Self) -> Self;

    /// Duplicate elimination. The default is the idempotent-δ of
    /// semirings where dup-elim is absorption (`δ(a) = a` for + -idempotent
    /// semirings like boolean/lineage); N\[X\] overrides this to keep δ
    /// symbolic. For numeric semirings δ(a) = "1 if a ≠ 0 else 0" matches
    /// set-semantics counting.
    fn delta(&self) -> Self {
        self.clone()
    }

    /// Is this the additive identity? Used by deletion propagation.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// Sum an iterator of semiring values.
pub fn sum<K: Semiring>(items: impl IntoIterator<Item = K>) -> K {
    items.into_iter().fold(K::zero(), |acc, x| acc.plus(&x))
}

/// Multiply an iterator of semiring values.
pub fn product<K: Semiring>(items: impl IntoIterator<Item = K>) -> K {
    items.into_iter().fold(K::one(), |acc, x| acc.times(&x))
}

#[cfg(test)]
pub(crate) mod laws {
    //! Reusable semiring-law checks, instantiated by each implementation's
    //! property tests.
    use super::Semiring;

    pub fn check_laws<K: Semiring>(a: K, b: K, c: K) {
        // commutative monoid (+, 0)
        assert_eq!(a.plus(&b), b.plus(&a), "+ commutes");
        assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)), "+ associates");
        assert_eq!(a.plus(&K::zero()), a, "0 is + identity");
        // commutative monoid (·, 1)
        assert_eq!(a.times(&b), b.times(&a), "· commutes");
        assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)), "· associates");
        assert_eq!(a.times(&K::one()), a, "1 is · identity");
        // distributivity
        assert_eq!(
            a.times(&b.plus(&c)),
            a.times(&b).plus(&a.times(&c)),
            "· distributes over +"
        );
        // annihilation
        assert_eq!(a.times(&K::zero()), K::zero(), "0 annihilates");
    }
}
