//! Static analysis for ProQL statements: the engine behind `CHECK` and
//! `EXPLAIN LINT`.
//!
//! [`analyze`] runs between parse and plan and **never executes** the
//! statement under analysis. It produces typed [`Diagnostic`] values —
//! error code, severity, byte [`Span`] into the original source,
//! message, optional did-you-mean suggestion — covering:
//!
//! - lexical and syntax errors (`E001`/`E002`), with the position the
//!   parser stopped at;
//! - name resolution against the session schema: node classes, fields,
//!   semirings (`E003`–`E005`), node ids (`E101`), module / kind / role
//!   names (`W201`–`W204`), each with a nearest-name suggestion;
//! - type checking: comparisons whose literal type cannot match the
//!   field (`W210` always-false, `W211` always-true);
//! - satisfiability: token predicates on token-less classes (`W212`),
//!   contradictory equalities (`W213`), empty `execution` ranges
//!   (`W214`), `kind` conjuncts contradicting the `MATCH` class
//!   (`W215`), duplicate conjuncts (`W216`);
//! - cost lints reusing the planner's node-count estimates: unbounded
//!   walks (`C301`) and unselective full scans (`C302`);
//! - informational notes: wildcard-free `LIKE` (`I401`), trivial `EVAL`
//!   of a base node (`I402`), `LIMIT 0` (`I403`), `DEPTH 0` (`I404`),
//!   and mutating statements under `CHECK` (`I405`).
//!
//! Determinism is load-bearing: the resident executor, the paged
//! executor, and both serve protocols must render byte-identical
//! diagnostics for the same source over the same graph (locked down by
//! `tests/differential.rs`). The analyzer therefore consults only
//! [`GraphStore`] facts that agree across backends — `node_count`,
//! `is_visible`, `kind_of`, and the (always resident) invocation table
//! — and never backend-specific state like reach-index presence or
//! postings availability.

use std::fmt;

use lipstick_core::store::GraphStore;
use lipstick_core::{NodeId, NodeKind};

use crate::ast::{
    like_match, CmpOp, Comparison, Field, Lit, NodeClass, NodeRef, SetExpr, SetTerm, Statement,
    WalkDir,
};
use crate::error::ProqlError;
use crate::lexer::{lex_spanned, Span, SpannedTok, Tok};
use crate::parser::parse_spanned_statement;
use crate::result::json_escape;

/// Diagnostic severity, ordered from worst to mildest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The statement cannot execute meaningfully.
    Error,
    /// The statement executes but almost certainly not as intended.
    Warning,
    /// Worth knowing; nothing is wrong.
    Info,
}

impl Severity {
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed diagnostic: code, severity, byte span into the analyzed
/// source, message, and an optional suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable error code (`E002`, `W213`, …) — see the README's
    /// error-code table.
    pub code: &'static str,
    pub severity: Severity,
    /// Byte range into the analyzed statement's source text.
    pub span: Span,
    pub message: String,
    /// A `did you mean …`-style hint, when the analyzer has one.
    pub suggestion: Option<String>,
}

/// The analyzer's complete output for one statement: the source it
/// analyzed plus every diagnostic, ordered by span then code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostics {
    pub source: String,
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn is_clean(&self) -> bool {
        self.items.is_empty()
    }

    fn count(&self, s: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == s).count()
    }

    /// JSON rendering used by the HTTP shim: the typed fields survive
    /// the wire, so remote tooling can re-render spans locally.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"type\":\"diagnostics\"");
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"infos\":{}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"start\":{},\"end\":{},\"message\":\"{}\"",
                d.code,
                d.severity,
                d.span.start,
                d.span.end,
                json_escape(&d.message)
            ));
            match &d.suggestion {
                Some(s) => out.push_str(&format!(",\"suggestion\":\"{}\"}}", json_escape(s))),
                None => out.push_str(",\"suggestion\":null}"),
            }
        }
        out.push_str("]}");
        out
    }
}

/// The canonical textual rendering: per-diagnostic header, `-->`
/// location with the byte span, the offending source line with a caret
/// underline, an optional `= help:` suggestion, and a summary line.
/// Byte-identical across every backend and protocol.
impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.items.is_empty() {
            return write!(f, "no diagnostics: statement is clean");
        }
        for d in &self.items {
            writeln!(f, "{}[{}]: {}", d.severity, d.code, d.message)?;
            let (line_no, line_start, line) = line_of(&self.source, d.span.start);
            writeln!(
                f,
                "  --> {}:{} (bytes {})",
                line_no,
                self.source[line_start..d.span.start.min(self.source.len())]
                    .chars()
                    .count()
                    + 1,
                d.span
            )?;
            let prefix_cols = self.source[line_start..d.span.start.min(line_start + line.len())]
                .chars()
                .count();
            let span_end = d.span.end.min(line_start + line.len());
            let caret_cols = if d.span.start < span_end {
                self.source[d.span.start..span_end].chars().count().max(1)
            } else {
                1
            };
            writeln!(f, "{:>4} | {}", line_no, line)?;
            writeln!(
                f,
                "     | {}{}",
                " ".repeat(prefix_cols),
                "^".repeat(caret_cols)
            )?;
            if let Some(s) = &d.suggestion {
                writeln!(f, "     = help: {s}")?;
            }
        }
        write!(
            f,
            "{} diagnostic(s): {} error(s), {} warning(s), {} info",
            self.items.len(),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

/// The (1-based line number, line start byte offset, line text) of the
/// line containing byte offset `at`.
fn line_of(src: &str, at: usize) -> (usize, usize, &str) {
    let at = at.min(src.len());
    let mut line_no = 1;
    let mut start = 0;
    for (i, b) in src.bytes().enumerate() {
        if i >= at {
            break;
        }
        if b == b'\n' {
            line_no += 1;
            start = i + 1;
        }
    }
    let end = src[start..].find('\n').map_or(src.len(), |rel| start + rel);
    (line_no, start, &src[start..end])
}

/// Every kind name a node can carry ([`NodeKind::name`]), sorted.
const ALL_KINDS: &[&str] = &[
    "agg",
    "base_tuple",
    "blackbox",
    "const",
    "delta",
    "invocation",
    "module_input",
    "module_output",
    "plus",
    "state",
    "tensor",
    "times",
    "workflow_input",
    "zoomed",
];

/// Every role name ([`lipstick_core::Role::name`]), sorted.
const ALL_ROLES: &[&str] = &[
    "free",
    "intermediate",
    "invocation",
    "module_input",
    "module_output",
    "state",
    "workflow_input",
    "zoom",
];

const ALL_CLASSES: &[&str] = &[
    "base-nodes",
    "i-nodes",
    "m-nodes",
    "nodes",
    "o-nodes",
    "p-nodes",
    "s-nodes",
    "v-nodes",
];

const ALL_FIELDS: &[&str] = &["execution", "kind", "module", "role", "token"];

const ALL_SEMIRINGS: &[&str] = &[
    "bool", "boolean", "cost", "counting", "lineage", "natural", "tropical", "which", "why",
];

/// Levenshtein edit distance over chars — small inputs, classic DP.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The nearest candidate within an edit-distance budget, rendered as a
/// `did you mean '…'?` hint. Ties break lexicographically so backends
/// cannot disagree.
fn did_you_mean<'a, I>(input: &str, candidates: I) -> Option<String>
where
    I: IntoIterator<Item = &'a str>,
{
    let input_lc = input.to_ascii_lowercase();
    let budget = (input_lc.chars().count() / 3).max(1) + 1;
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = edit_distance(&input_lc, &cand.to_ascii_lowercase());
        if d == 0 || d > budget {
            continue;
        }
        best = match best {
            Some((bd, bc)) if (bd, bc) <= (d, cand) => Some((bd, bc)),
            _ => Some((d, cand)),
        };
    }
    best.map(|(_, c)| format!("did you mean '{c}'?"))
}

/// Statically analyze one statement's source text against the store's
/// schema. Never executes, never plans, never panics: ill-formed input
/// comes back as diagnostics, not errors.
pub fn analyze<S: GraphStore + ?Sized>(store: &S, source: &str) -> Diagnostics {
    let mut a = Analyzer {
        store_modules: module_universe(store),
        store_executions: execution_universe(store),
        visible: visible_count(store),
        node_count: store.node_count(),
        source,
        items: Vec::new(),
    };
    a.run(store);
    let mut items = a.items;
    items.sort_by(|x, y| {
        (x.span.start, x.span.end, x.code).cmp(&(y.span.start, y.span.end, y.code))
    });
    Diagnostics {
        source: source.to_string(),
        items,
    }
}

fn module_universe<S: GraphStore + ?Sized>(store: &S) -> Vec<String> {
    let mut mods: Vec<String> = store
        .invocations()
        .iter()
        .map(|i| i.module.clone())
        .collect();
    mods.sort();
    mods.dedup();
    mods
}

fn execution_universe<S: GraphStore + ?Sized>(store: &S) -> Vec<u32> {
    let mut execs: Vec<u32> = store.invocations().iter().map(|i| i.execution).collect();
    execs.sort_unstable();
    execs.dedup();
    execs
}

/// Visible-node count via the index-level visibility bitmap — cheap and
/// identical on resident and paged stores (no records fault in).
fn visible_count<S: GraphStore + ?Sized>(store: &S) -> usize {
    (0..store.node_count())
        .filter(|&i| store.is_visible(NodeId(i as u32)))
        .count()
}

struct Analyzer<'s> {
    store_modules: Vec<String>,
    store_executions: Vec<u32>,
    visible: usize,
    node_count: usize,
    source: &'s str,
    items: Vec<Diagnostic>,
}

/// Span-anchored occurrences of analyzable constructs, recovered by
/// scanning the spanned token stream. Parse order is source order, so
/// the nth site of each category pairs with the nth AST occurrence.
#[derive(Default)]
struct Sites {
    /// `(field span, value span)` per comparison, in source order.
    comparisons: Vec<(Span, Span)>,
    /// The class identifier after each `MATCH`.
    classes: Vec<Span>,
    /// Each `ANCESTORS`/`DESCENDANTS` keyword.
    walks: Vec<Span>,
    /// `(value, span)` of the integer after each `DEPTH`.
    depths: Vec<(u64, Span)>,
    /// `(value, span)` of the integer after each `LIMIT`.
    limits: Vec<(u64, Span)>,
    /// Each `#id` token.
    node_ids: Vec<(u32, Span)>,
    /// The semiring identifier after `IN` (EVAL statements).
    semiring: Option<Span>,
}

fn is_kw(t: &Tok, kw: &str) -> bool {
    matches!(t, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn is_cmp_op(t: &Tok) -> bool {
    matches!(t, Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge)
}

/// One left-to-right pass over the token stream. Comparison sites are
/// consumed whole so a bare-identifier *value* (`module = ancestors`)
/// can never masquerade as a keyword site.
fn scan_sites(toks: &[SpannedTok]) -> Sites {
    let mut s = Sites::default();
    let mut i = 0;
    while i < toks.len() {
        // `field <op> value` / `field LIKE 'p'` / `field NOT LIKE 'p'`.
        if matches!(toks[i].tok, Tok::Ident(_)) {
            if i + 2 < toks.len() && is_cmp_op(&toks[i + 1].tok) {
                s.comparisons.push((toks[i].span, toks[i + 2].span));
                i += 3;
                continue;
            }
            if i + 2 < toks.len()
                && is_kw(&toks[i + 1].tok, "LIKE")
                && matches!(toks[i + 2].tok, Tok::Str(_))
            {
                s.comparisons.push((toks[i].span, toks[i + 2].span));
                i += 3;
                continue;
            }
            if i + 3 < toks.len()
                && is_kw(&toks[i + 1].tok, "NOT")
                && is_kw(&toks[i + 2].tok, "LIKE")
                && matches!(toks[i + 3].tok, Tok::Str(_))
            {
                s.comparisons.push((toks[i].span, toks[i + 3].span));
                i += 4;
                continue;
            }
        }
        match &toks[i].tok {
            Tok::Ident(w) if w.eq_ignore_ascii_case("MATCH") => {
                if let Some(next) = toks.get(i + 1) {
                    if matches!(next.tok, Tok::Ident(_)) {
                        s.classes.push(next.span);
                        i += 2;
                        continue;
                    }
                }
            }
            Tok::Ident(w)
                if w.eq_ignore_ascii_case("ANCESTORS") || w.eq_ignore_ascii_case("DESCENDANTS") =>
            {
                s.walks.push(toks[i].span);
            }
            Tok::Ident(w) if w.eq_ignore_ascii_case("DEPTH") => {
                if let Some(SpannedTok {
                    tok: Tok::Int(n),
                    span,
                }) = toks.get(i + 1)
                {
                    s.depths.push((*n, *span));
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(w) if w.eq_ignore_ascii_case("LIMIT") => {
                if let Some(SpannedTok {
                    tok: Tok::Int(n),
                    span,
                }) = toks.get(i + 1)
                {
                    s.limits.push((*n, *span));
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(w) if w.eq_ignore_ascii_case("IN") && s.semiring.is_none() => {
                if let Some(next) = toks.get(i + 1) {
                    if matches!(next.tok, Tok::Ident(_)) {
                        s.semiring = Some(next.span);
                    }
                }
            }
            Tok::NodeId(n) => s.node_ids.push((*n, toks[i].span)),
            _ => {}
        }
        i += 1;
    }
    s
}

impl Analyzer<'_> {
    fn whole_span(&self) -> Span {
        Span::new(0, self.source.len())
    }

    fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        span: Span,
        message: String,
        suggestion: Option<String>,
    ) {
        self.items.push(Diagnostic {
            code,
            severity,
            span,
            message,
            suggestion,
        });
    }

    fn run<S: GraphStore + ?Sized>(&mut self, store: &S) {
        let toks = match lex_spanned(self.source) {
            Ok(toks) => toks,
            Err(ProqlError::Lex { pos, message }) => {
                let end = self.source[pos.min(self.source.len())..]
                    .chars()
                    .next()
                    .map_or(pos, |c| pos + c.len_utf8());
                self.push("E001", Severity::Error, Span::new(pos, end), message, None);
                return;
            }
            Err(other) => {
                self.push(
                    "E001",
                    Severity::Error,
                    self.whole_span(),
                    other.to_string(),
                    None,
                );
                return;
            }
        };
        let stmt = match parse_spanned_statement(self.source, toks.clone()) {
            Ok(stmt) => stmt,
            Err((err, span)) => {
                let (code, message, suggestion) = match &err {
                    ProqlError::UnknownClass(name) => (
                        "E003",
                        err.to_string(),
                        did_you_mean(name, ALL_CLASSES.iter().copied()),
                    ),
                    ProqlError::UnknownField(name) => (
                        "E004",
                        err.to_string(),
                        did_you_mean(name, ALL_FIELDS.iter().copied()),
                    ),
                    ProqlError::UnknownSemiring(name) => (
                        "E005",
                        err.to_string(),
                        did_you_mean(name, ALL_SEMIRINGS.iter().copied()),
                    ),
                    _ => ("E002", err.to_string(), None),
                };
                self.push(code, Severity::Error, span, message, suggestion);
                return;
            }
        };
        let sites = scan_sites(&toks);
        self.statement(store, &stmt, &sites);
    }

    fn statement<S: GraphStore + ?Sized>(&mut self, store: &S, stmt: &Statement, sites: &Sites) {
        if !stmt.is_read_only() {
            self.push(
                "I405",
                Severity::Info,
                self.whole_span(),
                "statement mutates the session; CHECK only analyzed it, nothing executed".into(),
                None,
            );
        }
        // Node-id references resolve identically everywhere:
        // bounds + visibility are index-level on both backends.
        let ast_ids = collect_id_refs(stmt);
        let id_spans: Vec<Span> = if ast_ids.len() == sites.node_ids.len() {
            sites.node_ids.iter().map(|(_, sp)| *sp).collect()
        } else {
            vec![self.whole_span(); ast_ids.len()]
        };
        for (&id, &span) in ast_ids.iter().zip(&id_spans) {
            if id as usize >= self.node_count {
                self.push(
                    "E101",
                    Severity::Error,
                    span,
                    format!(
                        "unknown node reference #{id}: graph has {} node(s)",
                        self.node_count
                    ),
                    None,
                );
            } else if !store.is_visible(NodeId(id)) {
                self.push(
                    "E101",
                    Severity::Error,
                    span,
                    format!("node #{id} is not visible (deleted or zoomed away)"),
                    None,
                );
            }
        }
        match stmt {
            Statement::Query(q) => self.query(q, sites),
            Statement::Eval(NodeRef::Id(id), _)
                if (*id as usize) < self.node_count && store.is_visible(NodeId(*id)) =>
            {
                let kind = store.kind_of(NodeId(*id));
                if matches!(
                    kind,
                    NodeKind::BaseTuple { .. } | NodeKind::WorkflowInput { .. }
                ) {
                    let span = id_spans.first().copied().unwrap_or(self.whole_span());
                    self.push(
                        "I402",
                        Severity::Info,
                        span,
                        format!(
                            "EVAL of a {} node is trivial: its provenance is itself",
                            kind.name()
                        ),
                        None,
                    );
                }
            }
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => {
                self.statement(store, inner, sites)
            }
            _ => {}
        }
    }

    fn query(&mut self, q: &crate::ast::Query, sites: &Sites) {
        // Pair AST constructs with token-scan sites; a count mismatch
        // (defensive — parse success should preclude it) degrades to
        // whole-statement spans rather than misattributing.
        let mut walk = WalkState {
            comps: Vec::new(),
            classes: Vec::new(),
            walks: Vec::new(),
        };
        collect_query(&q.expr, &mut walk);
        let comp_spans: Vec<(Span, Span)> = if walk.comps.len() == sites.comparisons.len() {
            sites.comparisons.clone()
        } else {
            vec![(self.whole_span(), self.whole_span()); walk.comps.len()]
        };
        let class_spans: Vec<Span> = if walk.classes.len() == sites.classes.len() {
            sites.classes.clone()
        } else {
            vec![self.whole_span(); walk.classes.len()]
        };
        let walk_spans: Vec<Span> = if walk.walks.len() == sites.walks.len() {
            sites.walks.clone()
        } else {
            vec![self.whole_span(); walk.walks.len()]
        };

        // Predicate-level checks, grouped per predicate with the
        // owning MATCH class (when there is one).
        let mut cursor = 0usize;
        for (owner, pred) in collect_predicates(&q.expr) {
            let n = pred.conjuncts.len();
            let spans = &comp_spans[cursor..cursor + n];
            self.predicate(owner, pred, spans);
            cursor += n;
        }

        // Cost lints: unselective scans and unbounded walks.
        for ((class, filter), &span) in walk.classes.iter().zip(&class_spans) {
            if *class == NodeClass::All && filter.is_empty() {
                self.push(
                    "C302",
                    Severity::Info,
                    span,
                    format!(
                        "MATCH nodes with no WHERE predicate scans all {} visible node(s)",
                        self.visible
                    ),
                    Some("add a WHERE predicate or a narrower class to bound the scan".into()),
                );
            }
        }
        for ((dir, depth), &span) in walk.walks.iter().zip(&walk_spans) {
            if depth.is_none() {
                let kw = match dir {
                    WalkDir::Ancestors => "ANCESTORS",
                    WalkDir::Descendants => "DESCENDANTS",
                };
                self.push(
                    "C301",
                    Severity::Warning,
                    span,
                    format!(
                        "unbounded {kw} walk may traverse the whole cone (up to {} visible \
                         node(s))",
                        self.visible
                    ),
                    Some(
                        "bound it with DEPTH n, or BUILD INDEX to serve it from the closure".into(),
                    ),
                );
            }
        }
        for &(n, span) in &sites.depths {
            if n == 0 {
                self.push(
                    "I404",
                    Severity::Info,
                    span,
                    "DEPTH 0 collects nothing beyond the root".into(),
                    None,
                );
            }
        }
        for &(n, span) in &sites.limits {
            if n == 0 && q.shaping.limit == Some(0) {
                self.push(
                    "I403",
                    Severity::Info,
                    span,
                    "LIMIT 0 returns no rows".into(),
                    None,
                );
            }
        }
    }

    /// All per-predicate checks. `spans` pairs `(field, value)` spans
    /// with `pred.conjuncts` positionally.
    fn predicate(
        &mut self,
        owner: Option<NodeClass>,
        pred: &crate::ast::Predicate,
        spans: &[(Span, Span)],
    ) {
        let mut eq_seen: Vec<(Field, &Lit, Span)> = Vec::new();
        let mut exec_lo: u64 = 0;
        let mut exec_hi: u64 = u64::MAX;
        let mut exec_last: Option<Span> = None;
        for (idx, c) in pred.conjuncts.iter().enumerate() {
            let (field_span, value_span) = spans[idx];
            let whole = field_span.to(value_span);

            // W216: an exact duplicate of an earlier conjunct.
            if pred.conjuncts[..idx].contains(c) {
                self.push(
                    "W216",
                    Severity::Warning,
                    whole,
                    format!("duplicate conjunct '{c}' has no effect"),
                    None,
                );
                continue;
            }

            // Type checking: a literal the field can never carry makes
            // the comparison constant (§ Comparison::eval semantics).
            let type_ok = match (c.field, &c.value) {
                (Field::Execution, Lit::Int(_)) => true,
                (Field::Execution, Lit::Str(_)) => false,
                (_, Lit::Str(_)) => true,
                (_, Lit::Int(_)) => false,
            };
            if !type_ok {
                let (want, got) = match c.field {
                    Field::Execution => ("an integer", "a string"),
                    _ => ("a string", "an integer"),
                };
                if matches!(c.op, CmpOp::Ne | CmpOp::NotLike) {
                    self.push(
                        "W211",
                        Severity::Warning,
                        whole,
                        format!(
                            "'{c}' is always true: {} takes {want}, not {got}",
                            c.field.name()
                        ),
                        None,
                    );
                } else {
                    self.push(
                        "W210",
                        Severity::Warning,
                        whole,
                        format!(
                            "'{c}' can never match: {} takes {want}, not {got}",
                            c.field.name()
                        ),
                        None,
                    );
                }
                continue;
            }

            // Schema-name resolution per field.
            match (c.field, &c.value) {
                (Field::Module, Lit::Str(s)) => self.module_name(c, s, value_span),
                (Field::Kind, Lit::Str(s)) => {
                    self.vocab_name(c, s, value_span, "kind", "W202", ALL_KINDS)
                }
                (Field::Role, Lit::Str(s)) => {
                    self.vocab_name(c, s, value_span, "role", "W203", ALL_ROLES)
                }
                (Field::Execution, Lit::Int(n))
                    if c.op == CmpOp::Eq
                        && !self.store_executions.iter().any(|&e| u64::from(e) == *n) =>
                {
                    self.push(
                        "W204",
                        Severity::Warning,
                        value_span,
                        format!(
                            "no invocation has execution {n} (executions recorded: {})",
                            render_executions(&self.store_executions)
                        ),
                        None,
                    );
                }
                _ => {}
            }

            // I401: a LIKE pattern with no wildcards is equality in
            // disguise.
            if let (CmpOp::Like | CmpOp::NotLike, Lit::Str(p)) = (c.op, &c.value) {
                if !p.contains('%') && !p.contains('_') {
                    let op = if c.op == CmpOp::Like { "=" } else { "!=" };
                    self.push(
                        "I401",
                        Severity::Info,
                        value_span,
                        "pattern has no '%' or '_' wildcard; LIKE behaves like equality".into(),
                        Some(format!("write {} {op} '{p}'", c.field.name())),
                    );
                }
            }

            // W212: demanding an applicable token from a token-less
            // class can never match.
            if c.field == Field::Token
                && !matches!(c.op, CmpOp::Ne | CmpOp::NotLike)
                && matches!(
                    owner,
                    Some(
                        NodeClass::Invocation
                            | NodeClass::ModuleInput
                            | NodeClass::ModuleOutput
                            | NodeClass::State
                    )
                )
            {
                let class = owner.map_or("", |o| o.name());
                self.push(
                    "W212",
                    Severity::Warning,
                    whole,
                    format!("{class} carry no token; '{c}' can never match"),
                    None,
                );
            }

            // W215: a kind equality that contradicts the MATCH class.
            if let (Field::Kind, Lit::Str(s)) = (c.field, &c.value) {
                if let Some(only) = owner.and_then(|o| o.single_kind_name()) {
                    if c.op == CmpOp::Eq && s != only && ALL_KINDS.contains(&s.as_str()) {
                        self.push(
                            "W215",
                            Severity::Warning,
                            whole,
                            format!(
                                "MATCH {} only selects kind '{only}'; 'kind = '{s}'' can never \
                                 match",
                                owner.map_or("", |o| o.name())
                            ),
                            None,
                        );
                    } else if c.op == CmpOp::Ne && s == only {
                        self.push(
                            "W215",
                            Severity::Warning,
                            whole,
                            format!(
                                "MATCH {} only selects kind '{only}'; excluding it matches \
                                 nothing",
                                owner.map_or("", |o| o.name())
                            ),
                            None,
                        );
                    }
                }
            }

            // W213: contradictory equalities on one field.
            if c.op == CmpOp::Eq {
                if let Some((_, prior, _)) = eq_seen
                    .iter()
                    .find(|(f, v, _)| *f == c.field && *v != &c.value)
                {
                    self.push(
                        "W213",
                        Severity::Warning,
                        whole,
                        format!(
                            "'{c}' contradicts the earlier {} = {prior}; the predicate can \
                             never match",
                            c.field.name()
                        ),
                        None,
                    );
                }
                eq_seen.push((c.field, &c.value, whole));
            }

            // W214: accumulate execution bounds to detect empty ranges.
            if let (Field::Execution, Lit::Int(n)) = (c.field, &c.value) {
                match c.op {
                    CmpOp::Eq => {
                        exec_lo = exec_lo.max(*n);
                        exec_hi = exec_hi.min(*n);
                    }
                    CmpOp::Gt => exec_lo = exec_lo.max(n.saturating_add(1)),
                    CmpOp::Ge => exec_lo = exec_lo.max(*n),
                    CmpOp::Lt => exec_hi = exec_hi.min(n.checked_sub(1).unwrap_or(0).min(*n)),
                    CmpOp::Le => exec_hi = exec_hi.min(*n),
                    _ => {}
                }
                if matches!(
                    c.op,
                    CmpOp::Eq | CmpOp::Gt | CmpOp::Ge | CmpOp::Lt | CmpOp::Le
                ) {
                    exec_last = Some(whole);
                }
                // `execution < 0` has an empty range on its own.
                if c.op == CmpOp::Lt && *n == 0 {
                    exec_hi = 0;
                    exec_lo = 1;
                }
            }
        }
        if exec_lo > exec_hi {
            if let Some(span) = exec_last {
                self.push(
                    "W214",
                    Severity::Warning,
                    span,
                    "the execution bounds leave an empty range; the predicate can never match"
                        .into(),
                    None,
                );
            }
        }
    }

    /// W201: module names resolve against the invocation table (the one
    /// piece of session schema that is always resident on every
    /// backend).
    fn module_name(&mut self, c: &Comparison, s: &str, span: Span) {
        match c.op {
            CmpOp::Eq | CmpOp::Ne if !self.store_modules.iter().any(|m| m == s) => {
                let sugg = did_you_mean(s, self.store_modules.iter().map(|m| m.as_str()));
                let always = if c.op == CmpOp::Ne {
                    "; '!=' against it is always true"
                } else {
                    "; the comparison can never match"
                };
                self.push(
                    "W201",
                    Severity::Warning,
                    span,
                    format!("no module named '{s}'{always}"),
                    sugg,
                );
            }
            CmpOp::Like if !self.store_modules.iter().any(|m| like_match(s, m)) => {
                self.push(
                    "W201",
                    Severity::Warning,
                    span,
                    format!("pattern '{s}' matches none of the session's modules"),
                    None,
                );
            }
            _ => {}
        }
    }

    /// W202/W203: kind and role names come from a closed vocabulary.
    fn vocab_name(
        &mut self,
        c: &Comparison,
        s: &str,
        span: Span,
        what: &str,
        code: &'static str,
        universe: &[&'static str],
    ) {
        let known = universe.contains(&s);
        match c.op {
            CmpOp::Eq if !known => {
                self.push(
                    code,
                    Severity::Warning,
                    span,
                    format!("no node {what} named '{s}'; the comparison can never match"),
                    did_you_mean(s, universe.iter().copied()),
                );
            }
            CmpOp::Ne if !known => {
                self.push(
                    code,
                    Severity::Warning,
                    span,
                    format!("no node {what} named '{s}'; '!=' against it is always true"),
                    did_you_mean(s, universe.iter().copied()),
                );
            }
            CmpOp::Like if !universe.iter().any(|k| like_match(s, k)) => {
                self.push(
                    code,
                    Severity::Warning,
                    span,
                    format!("pattern '{s}' matches no node {what}"),
                    None,
                );
            }
            _ => {}
        }
    }
}

fn render_executions(execs: &[u32]) -> String {
    if execs.is_empty() {
        return "none".into();
    }
    execs
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// AST occurrences collected in source order, to pair with token sites.
struct WalkState<'a> {
    comps: Vec<&'a Comparison>,
    classes: Vec<(NodeClass, &'a crate::ast::Predicate)>,
    walks: Vec<(WalkDir, Option<u32>)>,
}

fn collect_query<'a>(e: &'a SetExpr, out: &mut WalkState<'a>) {
    match e {
        SetExpr::Term(t) => collect_term(t, out),
        SetExpr::Union(a, b) | SetExpr::Intersect(a, b) => {
            collect_query(a, out);
            collect_query(b, out);
        }
    }
}

fn collect_term<'a>(t: &'a SetTerm, out: &mut WalkState<'a>) {
    match t {
        SetTerm::Subgraph(_) => {}
        SetTerm::Walk {
            dir, depth, filter, ..
        } => {
            out.walks.push((*dir, *depth));
            out.comps.extend(filter.conjuncts.iter());
        }
        SetTerm::Match { class, filter } => {
            out.classes.push((*class, filter));
            out.comps.extend(filter.conjuncts.iter());
        }
        SetTerm::Paren(inner) => collect_query(inner, out),
    }
}

/// Every predicate of a query in source order, with the owning MATCH
/// class when the predicate belongs to one.
fn collect_predicates(e: &SetExpr) -> Vec<(Option<NodeClass>, &crate::ast::Predicate)> {
    fn go<'a>(e: &'a SetExpr, out: &mut Vec<(Option<NodeClass>, &'a crate::ast::Predicate)>) {
        match e {
            SetExpr::Term(SetTerm::Walk { filter, .. }) => out.push((None, filter)),
            SetExpr::Term(SetTerm::Match { class, filter }) => out.push((Some(*class), filter)),
            SetExpr::Term(SetTerm::Paren(inner)) => go(inner, out),
            SetExpr::Term(SetTerm::Subgraph(_)) => {}
            SetExpr::Union(a, b) | SetExpr::Intersect(a, b) => {
                go(a, out);
                go(b, out);
            }
        }
    }
    let mut out = Vec::new();
    go(e, &mut out);
    out
}

/// Every `#id` node reference of a statement, in source order.
fn collect_id_refs(stmt: &Statement) -> Vec<u32> {
    fn push_ref(r: &NodeRef, out: &mut Vec<u32>) {
        if let NodeRef::Id(n) = r {
            out.push(*n);
        }
    }
    fn walk_expr(e: &SetExpr, out: &mut Vec<u32>) {
        match e {
            SetExpr::Term(t) => match t {
                SetTerm::Subgraph(r) => push_ref(r, out),
                SetTerm::Walk { root, .. } => push_ref(root, out),
                SetTerm::Match { .. } => {}
                SetTerm::Paren(inner) => walk_expr(inner, out),
            },
            SetExpr::Union(a, b) | SetExpr::Intersect(a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
        }
    }
    let mut out = Vec::new();
    match stmt {
        Statement::Query(q) => walk_expr(&q.expr, &mut out),
        Statement::Why(r) | Statement::DeletePropagate(r) | Statement::Eval(r, _) => {
            push_ref(r, &mut out)
        }
        Statement::Depends(a, b) => {
            push_ref(a, &mut out);
            push_ref(b, &mut out);
        }
        Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => {
            out = collect_id_refs(inner)
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_and_suggestions() {
        assert_eq!(edit_distance("delta", "delta"), 0);
        assert_eq!(edit_distance("detla", "delta"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(
            did_you_mean("detla", ALL_KINDS.iter().copied()),
            Some("did you mean 'delta'?".into())
        );
        assert_eq!(
            did_you_mean("modul", ALL_FIELDS.iter().copied()),
            Some("did you mean 'module'?".into())
        );
        // Nothing close enough: no suggestion.
        assert_eq!(did_you_mean("zzzzzzzz", ALL_KINDS.iter().copied()), None);
        // The input itself is never suggested back.
        assert_eq!(did_you_mean("delta", ["delta"]), None);
    }

    #[test]
    fn line_of_finds_lines() {
        let src = "abc\ndef\nghi";
        assert_eq!(line_of(src, 0), (1, 0, "abc"));
        assert_eq!(line_of(src, 5), (2, 4, "def"));
        assert_eq!(line_of(src, 10), (3, 8, "ghi"));
        assert_eq!(line_of(src, 99), (3, 8, "ghi"));
    }

    #[test]
    fn site_scan_matches_source_order() {
        let toks = lex_spanned(
            "MATCH m-nodes WHERE module = 'a' AND kind != delta UNION ANCESTORS OF #3 DEPTH 2",
        )
        .unwrap();
        let s = scan_sites(&toks);
        assert_eq!(s.comparisons.len(), 2);
        assert_eq!(s.classes.len(), 1);
        assert_eq!(s.walks.len(), 1);
        assert_eq!(s.depths, vec![(2, s.depths[0].1)]);
        assert_eq!(s.node_ids.len(), 1);
        assert_eq!(s.node_ids[0].0, 3);
    }

    #[test]
    fn bare_ident_values_do_not_fake_keyword_sites() {
        // `ancestors` here is a comparison *value*, not a walk keyword.
        let toks = lex_spanned("MATCH nodes WHERE module = ancestors").unwrap();
        let s = scan_sites(&toks);
        assert_eq!(s.comparisons.len(), 1);
        assert!(s.walks.is_empty());
    }
}
