//! FILTER, UNION, DISTINCT, ORDER, LIMIT.
//!
//! - FILTER selects rows; provenance passes through untouched (no graph
//!   nodes are created — selection does not derive new data).
//! - UNION is additive bag union; each tuple keeps its annotation.
//! - DISTINCT annotates each surviving tuple with δ over its duplicates.
//! - ORDER / LIMIT are post-processing (§3.2): no provenance structure.

use std::collections::HashMap;
use std::sync::Arc;

use lipstick_core::Tracker;
use lipstick_nrel::sort::{compare, SortKey};
use lipstick_nrel::{Schema, Tuple};

use crate::error::Result;
use crate::expr::CExpr;

use super::context::{ARelation, ATuple, Ann};

/// `FILTER input BY cond`.
pub fn eval_filter<R: Copy>(
    input: &ARelation<R>,
    cond: &CExpr,
    out_schema: Arc<Schema>,
) -> Result<ARelation<R>> {
    let mut out = ARelation::empty(out_schema);
    for row in &input.rows {
        if cond.eval(&row.tuple)?.truthy() {
            out.rows.push(row.clone());
        }
    }
    Ok(out)
}

/// `UNION a, b, …` — additive bag union.
pub fn eval_union<R: Copy>(inputs: &[&ARelation<R>], out_schema: Arc<Schema>) -> ARelation<R> {
    let total = inputs.iter().map(|r| r.rows.len()).sum();
    let mut out = ARelation::empty(out_schema);
    out.rows.reserve(total);
    for rel in inputs {
        out.rows.extend(rel.rows.iter().cloned());
    }
    out
}

/// `DISTINCT input` — δ over each tuple's duplicates.
pub fn eval_distinct<T: Tracker>(
    input: &ARelation<T::Ref>,
    out_schema: Arc<Schema>,
    tracker: &mut T,
) -> ARelation<T::Ref> {
    let mut order: Vec<Tuple> = Vec::new();
    let mut dups: HashMap<Tuple, Vec<T::Ref>> = HashMap::new();
    for row in &input.rows {
        dups.entry(row.tuple.clone())
            .or_insert_with(|| {
                order.push(row.tuple.clone());
                Vec::new()
            })
            .push(row.ann.prov);
    }
    let mut out = ARelation::empty(out_schema);
    for tuple in order {
        let provs = &dups[&tuple];
        let prov = tracker.delta(provs);
        out.rows.push(ATuple {
            tuple,
            ann: Ann::plain(prov),
            members: Vec::new(),
        });
    }
    out
}

/// `ORDER input BY …` — stable multi-key sort; annotations follow rows.
pub fn eval_order<R: Copy>(
    input: &ARelation<R>,
    keys: &[SortKey],
    out_schema: Arc<Schema>,
) -> Result<ARelation<R>> {
    // Validate key positions before sorting so the comparator is
    // infallible.
    for row in &input.rows {
        for k in keys {
            row.tuple.get(k.position)?;
        }
    }
    let mut rows = input.rows.clone();
    rows.sort_by(|a, b| compare(&a.tuple, &b.tuple, keys).unwrap_or(std::cmp::Ordering::Equal));
    Ok(ARelation {
        schema: out_schema,
        rows,
    })
}

/// `LIMIT input n`.
pub fn eval_limit<R: Copy>(
    input: &ARelation<R>,
    count: usize,
    out_schema: Arc<Schema>,
) -> ARelation<R> {
    ARelation {
        schema: out_schema,
        rows: input.rows.iter().take(count).cloned().collect(),
    }
}
