//! Binary codec for values, node kinds, and roles.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::{Buf, BufMut};
use lipstick_core::agg::AggOp;
use lipstick_core::semiring::Token;
use lipstick_core::{InvocationId, NodeKind, Role};
use lipstick_nrel::{Bag, Tuple, Value};

use crate::error::{Result, StorageError};
use crate::varint::{get_count, get_i64, get_str, get_u32, put_i64, put_str, put_u64};

// ----- values -----

/// Widen an in-memory length for the wire. Lossless on every supported
/// target (usize ≤ 64 bits); spelled as `try_from` rather than `as` so
/// the codec stays free of silently-truncating casts (`xtask lint`
/// enforces this).
fn wire_len(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Append a value.
pub fn put_value(buf: &mut impl BufMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(2);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_u64(f.to_bits());
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::Tuple(t) => {
            buf.put_u8(5);
            put_tuple(buf, t);
        }
        Value::Bag(b) => {
            buf.put_u8(6);
            put_u64(buf, wire_len(b.len()));
            for t in b.iter() {
                put_tuple(buf, t);
            }
        }
        Value::Map(m) => {
            buf.put_u8(7);
            put_u64(buf, wire_len(m.len()));
            for (k, v) in m.iter() {
                put_str(buf, k);
                put_value(buf, v);
            }
        }
    }
}

/// Read a value.
pub fn get_value(buf: &mut impl Buf) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(StorageError::Corrupt("truncated value".into()));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(get_u8_checked(buf)? != 0)),
        2 => Ok(Value::Int(get_i64(buf)?)),
        3 => {
            if buf.remaining() < 8 {
                return Err(StorageError::Corrupt("truncated float".into()));
            }
            Ok(Value::Float(f64::from_bits(buf.get_u64())))
        }
        4 => Ok(Value::Str(Arc::from(get_str(buf)?.as_str()))),
        5 => Ok(Value::Tuple(get_tuple(buf)?)),
        6 => {
            let n = get_count(buf)?;
            let mut bag = Bag::empty();
            for _ in 0..n {
                bag.push(get_tuple(buf)?);
            }
            Ok(Value::Bag(bag))
        }
        7 => {
            let n = get_count(buf)?;
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let k = get_str(buf)?;
                let v = get_value(buf)?;
                m.insert(k, v);
            }
            Ok(Value::Map(Arc::new(m)))
        }
        other => Err(StorageError::Corrupt(format!("unknown value tag {other}"))),
    }
}

/// Append a tuple.
pub fn put_tuple(buf: &mut impl BufMut, t: &Tuple) {
    put_u64(buf, wire_len(t.arity()));
    for v in t.fields() {
        put_value(buf, v);
    }
}

/// Read a tuple.
pub fn get_tuple(buf: &mut impl Buf) -> Result<Tuple> {
    let n = get_count(buf)?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        fields.push(get_value(buf)?);
    }
    Ok(Tuple::new(fields))
}

// ----- node kinds -----

/// Read one byte or report truncation (the raw `get_u8` panics).
fn get_u8_checked(buf: &mut impl Buf) -> Result<u8> {
    if !buf.has_remaining() {
        return Err(StorageError::Corrupt("truncated byte".into()));
    }
    Ok(buf.get_u8())
}

fn agg_tag(op: AggOp) -> u8 {
    match op {
        AggOp::Count => 0,
        AggOp::Sum => 1,
        AggOp::Min => 2,
        AggOp::Max => 3,
        AggOp::Avg => 4,
    }
}

fn agg_from(tag: u8) -> Result<AggOp> {
    Ok(match tag {
        0 => AggOp::Count,
        1 => AggOp::Sum,
        2 => AggOp::Min,
        3 => AggOp::Max,
        4 => AggOp::Avg,
        other => return Err(StorageError::Corrupt(format!("unknown agg op {other}"))),
    })
}

/// Kind tag for a *retired* zoom composite: a tombstoned, unlinked
/// `Zoomed` node left in the arena by ZoomIn. ZoomIn remaps such nodes
/// to the reserved stash index [`lipstick_core::graph::RETIRED_STASH`]
/// (which ZoomOut never allocates), so the tag round-trips exactly:
/// `Zoomed { stash: RETIRED_STASH }` in means the same out. Visible
/// zoomed nodes are still unpersistable (zoom is a view; the encoder
/// rejects graphs with active ZoomOuts).
pub const RETIRED_ZOOM_TAG: u8 = 13;

/// Append the kind of a retired (tombstoned) zoom composite.
pub fn put_retired_zoom(buf: &mut impl BufMut) {
    buf.put_u8(RETIRED_ZOOM_TAG);
}

/// Append a node kind. Zoomed nodes are rejected at a higher level
/// (persisting a zoomed view is an error); retired composites go
/// through [`put_retired_zoom`].
pub fn put_kind(buf: &mut impl BufMut, kind: &NodeKind) -> Result<()> {
    match kind {
        NodeKind::WorkflowInput { token } => {
            buf.put_u8(0);
            put_str(buf, token.as_str());
        }
        NodeKind::Invocation => buf.put_u8(1),
        NodeKind::ModuleInput => buf.put_u8(2),
        NodeKind::ModuleOutput => buf.put_u8(3),
        NodeKind::StateUnit => buf.put_u8(4),
        NodeKind::BaseTuple { token } => {
            buf.put_u8(5);
            put_str(buf, token.as_str());
        }
        NodeKind::Plus => buf.put_u8(6),
        NodeKind::Times => buf.put_u8(7),
        NodeKind::Delta => buf.put_u8(8),
        NodeKind::AggResult { op } => {
            buf.put_u8(9);
            buf.put_u8(agg_tag(*op));
        }
        NodeKind::Tensor => buf.put_u8(10),
        NodeKind::Const { value } => {
            buf.put_u8(11);
            put_value(buf, value);
        }
        NodeKind::BlackBox { name, is_value } => {
            buf.put_u8(12);
            put_str(buf, name);
            buf.put_u8(u8::from(*is_value));
        }
        NodeKind::Zoomed { .. } => {
            return Err(StorageError::Corrupt(
                "zoomed composite nodes are views and cannot be persisted".into(),
            ))
        }
    }
    Ok(())
}

/// Read a node kind.
pub fn get_kind(buf: &mut impl Buf) -> Result<NodeKind> {
    if !buf.has_remaining() {
        return Err(StorageError::Corrupt("truncated node kind".into()));
    }
    Ok(match buf.get_u8() {
        0 => NodeKind::WorkflowInput {
            token: Token::new(get_str(buf)?),
        },
        1 => NodeKind::Invocation,
        2 => NodeKind::ModuleInput,
        3 => NodeKind::ModuleOutput,
        4 => NodeKind::StateUnit,
        5 => NodeKind::BaseTuple {
            token: Token::new(get_str(buf)?),
        },
        6 => NodeKind::Plus,
        7 => NodeKind::Times,
        8 => NodeKind::Delta,
        9 => NodeKind::AggResult {
            op: agg_from(get_u8_checked(buf)?)?,
        },
        10 => NodeKind::Tensor,
        11 => NodeKind::Const {
            value: get_value(buf)?,
        },
        12 => NodeKind::BlackBox {
            name: get_str(buf)?,
            is_value: get_u8_checked(buf)? != 0,
        },
        RETIRED_ZOOM_TAG => NodeKind::Zoomed {
            stash: lipstick_core::graph::RETIRED_STASH,
        },
        other => {
            return Err(StorageError::Corrupt(format!(
                "unknown node kind tag {other}"
            )))
        }
    })
}

// ----- roles -----

/// Append a role.
pub fn put_role(buf: &mut impl BufMut, role: &Role) {
    let (tag, inv): (u8, Option<InvocationId>) = match role {
        Role::WorkflowInput => (0, None),
        Role::Invocation(i) => (1, Some(*i)),
        Role::ModuleInput(i) => (2, Some(*i)),
        Role::ModuleOutput(i) => (3, Some(*i)),
        Role::State(i) => (4, Some(*i)),
        Role::Intermediate(i) => (5, Some(*i)),
        Role::Zoom(i) => (6, Some(*i)),
        Role::Free => (7, None),
    };
    buf.put_u8(tag);
    if let Some(i) = inv {
        put_u64(buf, u64::from(i.0));
    }
}

/// Read a role.
pub fn get_role(buf: &mut impl Buf) -> Result<Role> {
    if !buf.has_remaining() {
        return Err(StorageError::Corrupt("truncated role".into()));
    }
    let tag = buf.get_u8();
    let mut inv = || -> Result<InvocationId> { Ok(InvocationId(get_u32(buf)?)) };
    Ok(match tag {
        0 => Role::WorkflowInput,
        1 => Role::Invocation(inv()?),
        2 => Role::ModuleInput(inv()?),
        3 => Role::ModuleOutput(inv()?),
        4 => Role::State(inv()?),
        5 => Role::Intermediate(inv()?),
        6 => Role::Zoom(inv()?),
        7 => Role::Free,
        other => return Err(StorageError::Corrupt(format!("unknown role tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use lipstick_nrel::{bag, tuple};
    use proptest::prelude::*;

    fn round_trip_value(v: &Value) -> Value {
        let mut b = BytesMut::new();
        put_value(&mut b, v);
        let mut r = b.freeze();
        get_value(&mut r).unwrap()
    }

    #[test]
    fn scalar_values_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::str("hello"),
        ] {
            assert_eq!(round_trip_value(&v), v);
        }
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Value::Tuple(tuple![
            1i64,
            Value::Bag(bag![tuple!["a", 2i64], tuple!["b", 3i64]])
        ]);
        assert_eq!(round_trip_value(&v), v);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(1));
        m.insert("z".to_string(), Value::str("v"));
        let v = Value::Map(Arc::new(m));
        assert_eq!(round_trip_value(&v), v);
    }

    #[test]
    fn kinds_round_trip() {
        let kinds = vec![
            NodeKind::WorkflowInput {
                token: Token::new("I1"),
            },
            NodeKind::Invocation,
            NodeKind::ModuleInput,
            NodeKind::ModuleOutput,
            NodeKind::StateUnit,
            NodeKind::BaseTuple {
                token: Token::new("C2"),
            },
            NodeKind::Plus,
            NodeKind::Times,
            NodeKind::Delta,
            NodeKind::AggResult { op: AggOp::Min },
            NodeKind::Tensor,
            NodeKind::Const {
                value: Value::Int(5),
            },
            NodeKind::BlackBox {
                name: "CalcBid".into(),
                is_value: true,
            },
        ];
        for k in kinds {
            let mut b = BytesMut::new();
            put_kind(&mut b, &k).unwrap();
            let mut r = b.freeze();
            assert_eq!(get_kind(&mut r).unwrap(), k);
        }
    }

    #[test]
    fn zoomed_kind_rejected() {
        let mut b = BytesMut::new();
        assert!(put_kind(&mut b, &NodeKind::Zoomed { stash: 0 }).is_err());
    }

    #[test]
    fn roles_round_trip() {
        let roles = vec![
            Role::WorkflowInput,
            Role::Invocation(InvocationId(3)),
            Role::ModuleInput(InvocationId(0)),
            Role::ModuleOutput(InvocationId(9)),
            Role::State(InvocationId(2)),
            Role::Intermediate(InvocationId(100)),
            Role::Free,
        ];
        for role in roles {
            let mut b = BytesMut::new();
            put_role(&mut b, &role);
            let mut r = b.freeze();
            assert_eq!(get_role(&mut r).unwrap(), role);
        }
    }

    #[test]
    fn invocation_id_overflow_is_error_not_wrap() {
        // Role tag 1 (Invocation) followed by a varint above u32::MAX:
        // must be rejected, not silently truncated to a small id.
        let mut b = BytesMut::new();
        b.put_u8(1);
        put_u64(&mut b, u64::from(u32::MAX) + 1);
        let mut r = b.freeze();
        let err = get_role(&mut r).unwrap_err();
        assert!(err.to_string().contains("overflows 32-bit"), "got: {err}");
        // The boundary value itself still round-trips.
        let role = Role::Invocation(InvocationId(u32::MAX));
        let mut b = BytesMut::new();
        put_role(&mut b, &role);
        let mut r = b.freeze();
        assert_eq!(get_role(&mut r).unwrap(), role);
    }

    #[test]
    fn oversized_declared_lengths_are_rejected_before_allocating() {
        // A bag whose 8-byte header claims u64::MAX tuples.
        let mut b = BytesMut::new();
        b.put_u8(6);
        put_u64(&mut b, u64::MAX);
        let mut r = b.freeze();
        assert!(get_value(&mut r).is_err());
        // A tuple claiming more fields than the buffer could hold.
        let mut b = BytesMut::new();
        put_u64(&mut b, 1 << 40);
        b.put_u8(0);
        let mut r = b.freeze();
        assert!(get_tuple(&mut r).is_err());
        // A map likewise.
        let mut b = BytesMut::new();
        b.put_u8(7);
        put_u64(&mut b, 1 << 40);
        let mut r = b.freeze();
        assert!(get_value(&mut r).is_err());
    }

    #[test]
    fn retired_zoom_sentinel_round_trips_to_reserved_stash() {
        use lipstick_core::graph::RETIRED_STASH;
        let mut b = BytesMut::new();
        put_retired_zoom(&mut b);
        let mut r = b.freeze();
        assert_eq!(
            get_kind(&mut r).unwrap(),
            NodeKind::Zoomed {
                stash: RETIRED_STASH
            }
        );
        // Live zoom composites — any stash id, the reserved one
        // included — are views and never encodable.
        for stash in [0, RETIRED_STASH - 1, RETIRED_STASH] {
            let mut b = BytesMut::new();
            assert!(put_kind(&mut b, &NodeKind::Zoomed { stash }).is_err());
        }
    }

    #[test]
    fn unknown_tags_are_errors() {
        let mut r = bytes::Bytes::from_static(&[99]);
        assert!(get_value(&mut r).is_err());
        let mut r = bytes::Bytes::from_static(&[99]);
        assert!(get_kind(&mut r).is_err());
        let mut r = bytes::Bytes::from_static(&[99]);
        assert!(get_role(&mut r).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[a-z]{0,8}".prop_map(Value::str),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(|vs| Value::Tuple(Tuple::new(vs)))
        })
    }

    proptest! {
        #[test]
        fn value_round_trip(v in arb_value()) {
            prop_assert_eq!(round_trip_value(&v), v);
        }
    }
}
