//! # lipstick-storage — provenance persistence
//!
//! The Lipstick architecture (§5.1) separates the **Provenance
//! Tracker**, which writes provenance-annotated data to the filesystem
//! during workflow execution, from the **Query Processor**, which reads
//! it back and builds the in-memory provenance graph. This crate is
//! that boundary: a versioned, varint-packed binary format for
//! provenance graphs, plus the loader whose performance Figure 6
//! measures ("Building the Provenance Graph").
//!
//! The format is append-friendly: nodes are written in id order with
//! their predecessor lists, so the loader reconstructs both edge
//! directions in one pass.
//!
//! ```
//! use lipstick_core::graph::GraphTracker;
//! use lipstick_core::Tracker;
//! use lipstick_storage::{encode_graph, decode_graph};
//!
//! let mut t = GraphTracker::new();
//! let a = t.base("a");
//! let b = t.base("b");
//! t.plus(&[a, b]);
//! let g = t.finish();
//! let bytes = encode_graph(&g).unwrap();
//! let g2 = decode_graph(&bytes).unwrap();
//! assert_eq!(g.visible_signature(), g2.visible_signature());
//! ```

pub mod append;
pub mod codec;
pub mod error;
pub mod footer;
pub mod io;
pub mod log;
pub mod paged;
pub mod tail;
pub mod varint;

pub use append::AppendLog;
pub use error::{Result, StorageError};
pub use footer::{FooterWriter, LogIndex};
pub use io::{default_io, FaultIo, FaultKind, StdIo, StorageIo};
pub use log::{
    decode_graph, encode_graph, encode_graph_v2, load_graph, log_version, write_graph,
    write_graph_v2, write_graph_v2_io,
};
pub use paged::PagedLog;
pub use tail::TailRecord;
