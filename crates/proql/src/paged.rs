//! The paged executor: physical plans → results, against a
//! [`GraphStore`] instead of a resident graph.
//!
//! Runs the read-only statement forms — `MATCH`, walks, `SUBGRAPH OF`,
//! `WHY`, `EVAL`, `DEPENDS`, set operations, `EXPLAIN`, `STATS` —
//! faulting in only the node records each query touches. Mutating
//! statements never reach this module: the session promotes the paged
//! backend to a resident graph first (see
//! [`crate::session::Session::run`]).

use lipstick_core::obs::{SpanGuard, TraceCtx, Tracer};
use lipstick_core::query::Direction;
use lipstick_core::store::{
    depends_on_store, expr_of_store, subgraph_store, traverse_store, GraphStore,
};
use lipstick_core::{NodeId, NodeKind};

use crate::ast::{Comparison, Field, FieldValue, NodeClass, Predicate, WalkDir};
use crate::error::{ProqlError, Result};
use crate::exec::{
    combine_branches, eval_expr_in_semiring, output_rows, render_analyze, run_tasks_parallel,
    why_text, Parallelism,
};
use crate::plan::{DependsStrategy, PostingsKey, ScanStrategy, SetPlan, StmtPlan};
use crate::result::QueryOutput;

/// Stamp a `reads` attribute on a span from the store's fault-counter
/// delta around an operator. Parallel branches fault concurrently into
/// the same counter, so per-branch deltas can overlap there; per-query
/// totals are always exact.
fn attr_reads<S: GraphStore>(span: &mut SpanGuard<'_>, store: &S, before: usize) {
    span.attr("reads", store.records_read().saturating_sub(before) as u64);
}

/// Execute one planned read-only statement against a paged store. The
/// `Sync` bound is what lets independent set-operation branches fan out
/// over worker threads against one store — `PagedLog`'s sharded fault
/// cache is already built for concurrent readers.
pub(crate) fn execute<S: GraphStore + Sync>(
    store: &S,
    plan: &StmtPlan,
    par: Parallelism,
    ctx: TraceCtx<'_>,
) -> Result<QueryOutput> {
    crate::exec::check_deadline(&ctx)?;
    match plan {
        StmtPlan::Set { plan: p, shaping } => {
            let (nodes, visited) = run_set(store, p, par, ctx)?;
            let mut span = ctx.span("shaping");
            let before = store.records_read();
            let out = crate::shape::apply_shaping(store, nodes, visited, shaping);
            span.attr("rows", output_rows(&out));
            attr_reads(&mut span, store, before);
            Ok(out)
        }
        StmtPlan::Why { n, .. } => {
            let mut span = ctx.span("why");
            let before = store.records_read();
            let expr = expr_of_store(store, *n);
            attr_reads(&mut span, store, before);
            Ok(QueryOutput::Text(why_text(*n, &expr)))
        }
        StmtPlan::Eval(n, semiring) => {
            let mut span = ctx.span("eval");
            let before = store.records_read();
            let expr = expr_of_store(store, *n);
            attr_reads(&mut span, store, before);
            Ok(QueryOutput::Text(eval_expr_in_semiring(
                *n, &expr, *semiring,
            )))
        }
        StmtPlan::Depends {
            n,
            n_prime,
            strategy: DependsStrategy::PagedPropagation,
        } => {
            let mut span = ctx.span("depends");
            let before = store.records_read();
            let value = depends_on_store(store, *n, *n_prime)?;
            attr_reads(&mut span, store, before);
            Ok(QueryOutput::Bool(value))
        }
        StmtPlan::Stats => {
            let visible = (0..store.node_count() as u32)
                .filter(|i| store.is_visible(NodeId(*i)))
                .count();
            let mut text = format!(
                "paged log: {} record(s), {} visible, {} invocation(s), {} record(s) decoded \
                 so far\n",
                store.node_count(),
                visible,
                store.invocations().len(),
                store.records_read()
            );
            let mut total = 0usize;
            for (name, bytes) in store.memory_breakdown() {
                total += bytes;
                text.push_str(&format!("  memory store.{name}={bytes}\n"));
            }
            text.push_str(&format!(
                "  memory total={total} ({})",
                lipstick_core::obs::format_bytes(total)
            ));
            Ok(QueryOutput::Text(text))
        }
        StmtPlan::DropIndex => Ok(QueryOutput::Message(
            "reach index dropped (paged sessions have none)".into(),
        )),
        StmtPlan::Explain(inner) => Ok(QueryOutput::Text(inner.to_string())),
        StmtPlan::ExplainAnalyze(inner) => {
            let tracer = Tracer::new();
            let output = execute(store, inner, par, TraceCtx::root(&tracer))?;
            Ok(QueryOutput::Text(render_analyze(
                inner,
                &tracer.finish(),
                &output,
            )))
        }
        StmtPlan::Check { source } | StmtPlan::ExplainLint { source } => {
            let _span = ctx.span("check");
            Ok(QueryOutput::Diagnostics(crate::analyze::analyze(
                store, source,
            )))
        }
        // Mutating plans are routed through promotion (paged backend)
        // or the session's append-mutation arms (append backend).
        StmtPlan::Delete(_)
        | StmtPlan::ZoomOut { .. }
        | StmtPlan::ZoomIn { .. }
        | StmtPlan::BuildIndex
        | StmtPlan::Compact
        | StmtPlan::Depends { .. } => Err(ProqlError::Storage(
            "internal: mutating plan reached the paged executor".into(),
        )),
    }
}

/// Run a set plan; returns (sorted nodes, candidates examined).
fn run_set<S: GraphStore + Sync>(
    store: &S,
    plan: &SetPlan,
    par: Parallelism,
    ctx: TraceCtx<'_>,
) -> Result<(Vec<NodeId>, usize)> {
    crate::exec::check_deadline(&ctx)?;
    match plan {
        SetPlan::Scan {
            class,
            filter,
            strategy,
            limit,
        } => {
            let mut span = ctx.span("scan");
            let before = store.records_read();
            // Postings lists are written in ascending id order, and the
            // full-record sweep is ascending by construction — which is
            // what makes the early-exit limit below agree with the
            // resident executor's id-ordered scan.
            let candidates: Vec<NodeId> = match strategy {
                ScanStrategy::PostingsScan { key, .. } => match key {
                    PostingsKey::Module(m) => store
                        .module_postings(m)
                        .expect("planned against a postings-backed store"),
                    PostingsKey::Kind(k) => store
                        .kind_postings(k)
                        .expect("planned against a postings-backed store"),
                    PostingsKey::TokenKinds => {
                        let mut ids = store
                            .kind_postings("base_tuple")
                            .expect("planned against a postings-backed store");
                        ids.extend(
                            store
                                .kind_postings("workflow_input")
                                .expect("planned against a postings-backed store"),
                        );
                        ids.sort_unstable();
                        ids.dedup();
                        ids
                    }
                    PostingsKey::ModuleLike { modules, .. } => {
                        let mut ids: Vec<NodeId> = modules
                            .iter()
                            .flat_map(|m| {
                                store
                                    .module_postings(m)
                                    .expect("planned against a postings-backed store")
                            })
                            .collect();
                        ids.sort_unstable();
                        ids.dedup();
                        ids
                    }
                },
                _ => (0..store.node_count() as u32).map(NodeId).collect(),
            };
            let mut visited = 0;
            let mut out = Vec::new();
            for id in candidates {
                if limit.is_some_and(|n| out.len() as u64 >= n) {
                    break;
                }
                if !store.is_visible(id) {
                    continue;
                }
                visited += 1;
                if class_matches(store, *class, id) && pred_matches(store, id, filter) {
                    out.push(id);
                }
            }
            out.sort();
            span.attr("rows", out.len() as u64);
            span.attr("visited", visited as u64);
            attr_reads(&mut span, store, before);
            Ok((out, visited))
        }
        SetPlan::Walk {
            root,
            dir,
            depth,
            filter,
            ..
        } => {
            let mut span = ctx.span("walk");
            let before = store.records_read();
            let direction = match dir {
                WalkDir::Ancestors => Direction::Ancestors,
                WalkDir::Descendants => Direction::Descendants,
            };
            let (nodes, stats) = traverse_store(store, *root, direction, *depth, |id| {
                pred_matches(store, id, filter)
            })?;
            span.attr("rows", nodes.len() as u64);
            span.attr("visited", stats.visited as u64);
            attr_reads(&mut span, store, before);
            Ok((nodes, stats.visited))
        }
        SetPlan::Subgraph { root } => {
            let mut span = ctx.span("subgraph");
            let before = store.records_read();
            let result = subgraph_store(store, *root)?;
            let visited = result.len();
            span.attr("rows", result.nodes.len() as u64);
            span.attr("visited", visited as u64);
            attr_reads(&mut span, store, before);
            Ok((result.nodes, visited))
        }
        SetPlan::Union(a, b) | SetPlan::Intersect(a, b) => {
            let merge: fn(Vec<NodeId>, Vec<NodeId>) -> Vec<NodeId> = match plan {
                SetPlan::Union(..) => crate::exec::merge_union,
                _ => crate::exec::merge_intersect,
            };
            let branches = plan.branches();
            let engaged = par.engaged(store.node_count(), branches.len());
            // Traced executions always flatten (see the resident
            // executor's twin arm for why: one canonical span shape,
            // per-branch panic containment preserved).
            if engaged || ctx.enabled() {
                let label = match plan {
                    SetPlan::Union(..) => "union",
                    _ => "intersect",
                };
                let mut span = ctx.span(label);
                let before = store.records_read();
                let sctx = span.ctx();
                let run_branch = |i: usize, branch_par: Parallelism| {
                    let mut bspan = sctx.span_indexed(&format!("branch {i}"), i as u32);
                    let breads = store.records_read();
                    let r = run_set(store, branches[i], branch_par, bspan.ctx());
                    if let Ok((nodes, visited)) = &r {
                        bspan.attr("rows", nodes.len() as u64);
                        bspan.attr("visited", *visited as u64);
                    }
                    attr_reads(&mut bspan, store, breads);
                    r
                };
                let results = if engaged {
                    run_tasks_parallel(par.threads, branches.len(), |i| {
                        run_branch(i, Parallelism::SEQUENTIAL)
                    })
                } else {
                    (0..branches.len())
                        .map(|i| {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_branch(i, par)
                            }))
                        })
                        .collect()
                };
                let out = combine_branches(results, merge);
                if let Ok((nodes, visited)) = &out {
                    span.attr("rows", nodes.len() as u64);
                    span.attr("visited", *visited as u64);
                }
                attr_reads(&mut span, store, before);
                return out;
            }
            let (xs, va) = run_set(store, a, par, ctx)?;
            let (ys, vb) = run_set(store, b, par, ctx)?;
            Ok((merge(xs, ys), va + vb))
        }
    }
}

/// Does a node belong to a `MATCH` class? Mirrors the resident
/// executor's classification, faulting the record for its kind.
fn class_matches<S: GraphStore>(store: &S, class: NodeClass, id: NodeId) -> bool {
    if class == NodeClass::All {
        return true;
    }
    let kind = store.kind_of(id);
    match class {
        NodeClass::All => true,
        NodeClass::Invocation => matches!(kind, NodeKind::Invocation),
        NodeClass::ModuleInput => matches!(kind, NodeKind::ModuleInput),
        NodeClass::ModuleOutput => matches!(kind, NodeKind::ModuleOutput),
        NodeClass::State => matches!(kind, NodeKind::StateUnit),
        NodeClass::Base => matches!(kind, NodeKind::BaseTuple { .. }),
        NodeClass::PNodes => !kind.is_value_node(),
        NodeClass::VNodes => kind.is_value_node(),
    }
}

/// Evaluate a predicate conjunction on one node, mirroring the resident
/// executor's semantics: fields that don't apply make `=` false and
/// `!=` true.
fn pred_matches<S: GraphStore>(store: &S, id: NodeId, pred: &Predicate) -> bool {
    pred.conjuncts
        .iter()
        .all(|c| comparison_matches(store, id, c))
}

fn comparison_matches<S: GraphStore>(store: &S, id: NodeId, c: &Comparison) -> bool {
    match c.field {
        Field::Kind => c.eval(Some(FieldValue::Str(store.kind_of(id).name()))),
        Field::Role => c.eval(Some(FieldValue::Str(store.role_of(id).name()))),
        Field::Module => c.eval(
            store
                .role_of(id)
                .invocation()
                .map(|inv| FieldValue::Str(store.invocation(inv).module.as_str())),
        ),
        Field::Execution => c.eval(
            store
                .role_of(id)
                .invocation()
                .map(|inv| FieldValue::Int(u64::from(store.invocation(inv).execution))),
        ),
        // The decoded kind is a temporary; borrow the token from a
        // local binding for the comparison's lifetime.
        Field::Token => match &store.kind_of(id) {
            NodeKind::BaseTuple { token } | NodeKind::WorkflowInput { token } => {
                c.eval(Some(FieldValue::Str(token.as_str())))
            }
            _ => c.eval(None),
        },
    }
}
