//! Overload and shutdown hardening: bounded write-queue shedding
//! (`BUSY retry_after_ms=`), client retry convergence, per-request
//! read deadlines, idle-connection timeouts, and graceful shutdown
//! that loses no acked write.

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::parser::parse_statement;
use lipstick_proql::Session;
use lipstick_serve::client::{http_get, RetryPolicy};
use lipstick_serve::{Client, Reply, Server, ServerConfig};
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::dealers::{self, DealersParams};

fn dealers_graph() -> ProvGraph {
    let params = DealersParams {
        num_cars: 24,
        num_exec: 2,
        seed: 7,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("dealers run");
    tracker.finish()
}

fn temp_log(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lipstick-serve-overload-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_graph_v2(&dealers_graph(), &path).unwrap();
    // A WAL tail left by a previous run binds to a byte-identical base
    // (same generator, same seed) and would replay its mutations into
    // this run; start from a sealed base only.
    let mut tail = path.clone().into_os_string();
    tail.push(".tail");
    let _ = std::fs::remove_file(tail);
    path
}

fn base_victims(n: usize) -> Vec<lipstick_core::NodeId> {
    dealers_graph()
        .iter_visible()
        .filter(|(_, node)| matches!(node.kind, lipstick_core::NodeKind::BaseTuple { .. }))
        .map(|(id, _)| id)
        .take(n)
        .collect()
}

/// A saturating mutation burst against `write_queue_limit: 1` must
/// shed with `BUSY` (bounded queue, typed reply, statement not
/// executed), the shed counter must advance, and a client retrying
/// with backoff must still land every write exactly once.
#[test]
fn bounded_write_queue_sheds_busy_and_retries_converge() {
    let session = Session::open_append(temp_log("shed.lpstk")).unwrap();
    let handle = Server::new(
        session,
        ServerConfig {
            workers: 16,
            write_queue_limit: 1,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap();
    let addr = handle.addr();

    // Phase 1: a storm of no-op mutations (the zoom target does not
    // exist, so state never changes) from 12 concurrent writers. With
    // a queue bound of one, admission races must shed some of them.
    // The storm repeats — bounded — until a shed is observed; one
    // round has overwhelmingly high probability already.
    let mut busy_seen = 0u64;
    for _round in 0..10 {
        let busy: u64 = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..12)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let mut busy = 0u64;
                        for _ in 0..20 {
                            match client.query("ZOOM OUT TO NoSuchModule").unwrap() {
                                Reply::Busy { retry_after_ms } => {
                                    assert!(
                                        (1..=1_000).contains(&retry_after_ms),
                                        "hint out of contract: {retry_after_ms}"
                                    );
                                    busy += 1;
                                }
                                Reply::Err(_) | Reply::Ok { .. } => {}
                            }
                        }
                        busy
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });
        busy_seen += busy;
        if busy_seen > 0 {
            break;
        }
    }
    assert!(busy_seen > 0, "no shed observed across 2400 racing writes");

    // Phase 2: concurrent *real* deletes through the retry client.
    // BUSY guarantees non-execution, so a retried DELETE lands exactly
    // once — each must come back Ok, never "unknown node reference".
    let victims = base_victims(8);
    let policy = RetryPolicy {
        max_attempts: 200,
        base_backoff_ms: 1,
        max_backoff_ms: 8,
    };
    std::thread::scope(|scope| {
        for victim in &victims {
            let policy = policy.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let reply = client
                    .query_with_retry(&format!("DELETE #{} PROPAGATE", victim.0), &policy)
                    .unwrap();
                assert!(reply.is_ok(), "retried delete failed: {reply:?}");
            });
        }
    });

    // Server still healthy: reads work, sheds were counted.
    let mut client = Client::connect(addr).unwrap();
    for victim in &victims {
        let why = client.query(&format!("WHY #{}", victim.0)).unwrap();
        assert!(matches!(why, Reply::Err(_)), "lost write: {why:?}");
    }
    let (_, metrics) = http_get(addr, "/metrics").unwrap();
    let shed = metrics
        .lines()
        .find_map(|l| l.strip_prefix("lipstick_serve_shed_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("shed counter exported");
    assert!(
        shed >= busy_seen as f64,
        "counter {shed} < observed {busy_seen}"
    );

    drop(client);
    handle.shutdown();
}

/// A 1 µs request deadline cancels every uncached read with a typed
/// `deadline exceeded` error, counts it, and leaves the connection and
/// session fully usable — mutations never carry the deadline.
#[test]
fn request_deadline_cancels_reads_and_spares_writes() {
    let session = Session::open(temp_log("deadline.lpstk")).unwrap();
    let handle = Server::new(
        session,
        ServerConfig {
            workers: 2,
            request_deadline_us: 1,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let reply = client.query("MATCH nodes").unwrap();
    let Reply::Err(message) = &reply else {
        panic!("a 1µs deadline must cancel the read, got {reply:?}");
    };
    assert!(
        message.contains("deadline"),
        "error names the deadline: {message}"
    );

    // A mutation on the same connection runs to completion: deadlines
    // are a read-path contract (a write is never left half-applied).
    let victim = base_victims(1)[0];
    let del = client
        .query(&format!("DELETE #{} PROPAGATE", victim.0))
        .unwrap();
    assert!(del.is_ok(), "mutation hit the read deadline: {del:?}");

    let (_, metrics) = http_get(handle.addr(), "/metrics").unwrap();
    let exceeded = metrics
        .lines()
        .find_map(|l| l.strip_prefix("lipstick_serve_deadline_exceeded_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .expect("deadline counter exported");
    assert!(exceeded >= 1.0, "counter never advanced: {exceeded}");

    drop(client);
    handle.shutdown();
}

/// The slowloris guard: a connection that stalls mid-session longer
/// than `idle_timeout_us` is dropped, while a promptly-speaking client
/// on the same server is untouched.
#[test]
fn idle_connections_time_out_without_harming_active_ones() {
    let session = Session::open(temp_log("idle.lpstk")).unwrap();
    let handle = Server::new(
        session,
        ServerConfig {
            workers: 4,
            idle_timeout_us: 50_000, // 50 ms
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap();

    // The idler completes one statement, then goes quiet past the
    // timeout; its next query must fail (server closed the socket).
    let mut idler = Client::connect(handle.addr()).unwrap();
    assert!(idler.query("MATCH base-nodes").unwrap().is_ok());
    std::thread::sleep(std::time::Duration::from_millis(250));
    assert!(
        idler.query("MATCH base-nodes").is_err(),
        "idle connection survived the timeout"
    );

    // An active client keeps the connection by speaking inside the
    // window — the timeout is per-read idleness, not connection age.
    let mut active = Client::connect(handle.addr()).unwrap();
    for _ in 0..6 {
        std::thread::sleep(std::time::Duration::from_millis(20));
        let reply = active.query("MATCH base-nodes").unwrap();
        assert!(reply.is_ok(), "active connection dropped: {reply:?}");
    }

    // The retry client treats the close as transient: it reconnects
    // and completes, counting the retry.
    std::thread::sleep(std::time::Duration::from_millis(250));
    let reply = active
        .query_with_retry("MATCH base-nodes", &RetryPolicy::default())
        .unwrap();
    assert!(reply.is_ok(), "reconnect-and-retry failed: {reply:?}");
    assert!(active.retries() >= 1, "retry not counted");

    drop(idler);
    drop(active);
    handle.shutdown();
}

/// The durability acceptance: writers race a graceful shutdown, and
/// every write that was **acked** (its `OK` reply reached the client)
/// must be present after reopening the same files — the drain synced
/// the tail before `shutdown()` returned. The drain-time gauge is set.
#[test]
fn graceful_shutdown_loses_no_acked_write() {
    let path = temp_log("drain.lpstk");
    let session = Session::open_append(&path).unwrap();
    assert!(session.is_append());
    let handle = Server::new(
        session,
        ServerConfig {
            workers: 6,
            ..ServerConfig::default()
        },
    )
    .serve("127.0.0.1:0")
    .unwrap();
    let addr = handle.addr();

    // Three writers chew through disjoint victim sets while the main
    // thread pulls the plug mid-run. Each records only the deletes the
    // server actually acknowledged.
    let victims = base_victims(8);
    let (first, rest) = victims.split_at(2);
    let chunks: Vec<Vec<lipstick_core::NodeId>> = rest.chunks(2).map(|c| c.to_vec()).collect();
    // Two deletes land before shutdown begins, so the survivor set is
    // never trivially empty.
    let mut client = Client::connect(addr).unwrap();
    let mut acked: Vec<lipstick_core::NodeId> = Vec::new();
    for victim in first {
        assert!(client
            .query(&format!("DELETE #{} PROPAGATE", victim.0))
            .unwrap()
            .is_ok());
        acked.push(*victim);
    }
    drop(client);

    let racing: Vec<lipstick_core::NodeId> = std::thread::scope(|scope| {
        let writers: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut acked = Vec::new();
                    let Ok(mut client) = Client::connect(addr) else {
                        return acked; // accept loop already closed
                    };
                    for victim in chunk {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        match client.query(&format!("DELETE #{} PROPAGATE", victim.0)) {
                            Ok(reply) if reply.is_ok() => acked.push(victim),
                            // An ERR (e.g. raced statement), a BUSY, or
                            // the shutdown half-close: not acked, and
                            // the connection may be done for.
                            Ok(_) => {}
                            Err(_) => break,
                        }
                    }
                    acked
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(12));
        handle.shutdown();
        writers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    acked.extend(racing);
    assert!(acked.len() >= 2, "at least the pre-shutdown acks exist");

    // Shutdown set the drain gauge in the process-global registry.
    let rendered = lipstick_core::obs::registry().render_prometheus();
    assert!(
        rendered.contains("lipstick_serve_shutdown_drain_us"),
        "drain gauge missing from registry"
    );

    // Reopen the same files: every acked delete must have survived.
    let reopened = Session::open_append(&path).unwrap();
    for victim in &acked {
        let why = parse_statement(&format!("WHY #{}", victim.0)).unwrap();
        let err = reopened
            .run_read_stmt(&why)
            .expect_err("acked delete lost across graceful shutdown");
        assert_eq!(
            err.to_string(),
            format!("unknown node reference #{}", victim.0)
        );
    }
}
