//! Subgraph queries (paper §5.1).
//!
//! "A subgraph query takes a node id as input and returns a subgraph
//! that includes all ancestors and descendants of the node, along with
//! all siblings of its descendants." Siblings of a node d are the other
//! successors of d's predecessors (nodes sharing a parent with d) — they
//! expose the alternative/joint derivations that the node's descendants
//! participate in, which is what dependency analysis inspects.

use std::collections::VecDeque;

use crate::graph::bitset::BitSet;
use crate::graph::node::NodeId;
use crate::graph::ProvGraph;

use super::error::QueryError;

/// Result of a subgraph query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubgraphResult {
    /// All nodes of the subgraph (root, ancestors, descendants,
    /// siblings of descendants), ascending by id.
    pub nodes: Vec<NodeId>,
    /// Number of ancestors of the root (root excluded).
    pub ancestor_count: usize,
    /// Number of descendants of the root (root excluded).
    pub descendant_count: usize,
}

impl SubgraphResult {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }
}

/// Breadth-first sweep over visible nodes in one direction.
fn sweep(
    graph: &ProvGraph,
    root: NodeId,
    visited: &mut BitSet,
    next: impl Fn(&ProvGraph, NodeId) -> Vec<NodeId>,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut local = BitSet::new(graph.len());
    let mut queue = VecDeque::new();
    queue.push_back(root);
    local.insert(root.index());
    while let Some(v) = queue.pop_front() {
        for n in next(graph, v) {
            if graph.node(n).is_visible() && local.insert(n.index()) {
                out.push(n);
                queue.push_back(n);
            }
        }
    }
    for id in &out {
        visited.insert(id.index());
    }
    out
}

/// Run a subgraph query from `root`.
pub fn subgraph(graph: &ProvGraph, root: NodeId) -> Result<SubgraphResult, QueryError> {
    if !graph.node(root).is_visible() {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut members = BitSet::new(graph.len());
    members.insert(root.index());

    let ancestors = sweep(graph, root, &mut members, |g, v| {
        g.node(v).preds().to_vec()
    });
    let descendants = sweep(graph, root, &mut members, |g, v| {
        g.node(v).succs().to_vec()
    });

    // Siblings of descendants: other successors of each descendant's
    // predecessors. The root's own siblings are not included (the paper
    // scopes siblings to descendants).
    for d in &descendants {
        for &p in graph.node(*d).preds() {
            if !graph.node(p).is_visible() {
                continue;
            }
            for &sib in graph.node(p).succs() {
                if graph.node(sib).is_visible() {
                    members.insert(sib.index());
                }
            }
        }
    }

    Ok(SubgraphResult {
        nodes: members.iter().map(|i| NodeId(i as u32)).collect(),
        ancestor_count: ancestors.len(),
        descendant_count: descendants.len(),
    })
}

/// The ancestor set only (used by the §5.5 fine-grainedness analysis:
/// which base/state tuples does an output depend on?).
pub fn ancestors(graph: &ProvGraph, root: NodeId) -> Result<Vec<NodeId>, QueryError> {
    if !graph.node(root).is_visible() {
        return Err(QueryError::NodeNotVisible(root));
    }
    let mut scratch = BitSet::new(graph.len());
    let mut a = sweep(graph, root, &mut scratch, |g, v| {
        g.node(v).preds().to_vec()
    });
    a.sort();
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond with a sibling branch:
    ///
    /// ```text
    ///   a   b     c
    ///    \ /      |
    ///     t       p   (p is a sibling-input relative of nothing here)
    ///    / \
    ///   u   w     (u, w descendants of t; c→p separate component)
    /// ```
    fn diamond() -> (ProvGraph, [NodeId; 7]) {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let c = g.add_base("c");
        let t = g.add_times(&[a, b]);
        let u = g.add_plus(&[t]);
        let w = g.add_plus(&[t]);
        let p = g.add_plus(&[c]);
        (g, [a, b, c, t, u, w, p])
    }

    #[test]
    fn subgraph_of_mid_node() {
        let (g, [a, b, c, t, u, w, p]) = diamond();
        let r = subgraph(&g, t).unwrap();
        assert!(r.contains(a) && r.contains(b), "ancestors");
        assert!(r.contains(u) && r.contains(w), "descendants");
        assert!(!r.contains(c) && !r.contains(p), "unrelated component");
        assert_eq!(r.ancestor_count, 2);
        assert_eq!(r.descendant_count, 2);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn siblings_of_descendants_are_included() {
        // a → t ← b;  b → x.  Subgraph of a: descendant {t}; x shares
        // parent b with descendant t, so x is included. b itself is
        // neither ancestor, descendant, nor sibling — it stays out (the
        // paper's definition covers siblings only, not co-parents).
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let t = g.add_times(&[a, b]);
        let x = g.add_plus(&[b]);
        let r = subgraph(&g, a).unwrap();
        assert!(r.contains(t));
        assert!(r.contains(x), "x shares parent b with descendant t");
        assert!(!r.contains(b), "co-parents are not part of the subgraph");
    }

    #[test]
    fn subgraph_of_source_and_sink() {
        let (g, [a, _, _, t, u, _, _]) = diamond();
        let from_a = subgraph(&g, a).unwrap();
        assert_eq!(from_a.ancestor_count, 0);
        assert!(from_a.contains(t) && from_a.contains(u));
        let from_u = subgraph(&g, u).unwrap();
        assert_eq!(from_u.descendant_count, 0);
        assert!(from_u.contains(a));
    }

    #[test]
    fn ancestors_only() {
        let (g, [a, b, _, t, u, _, _]) = diamond();
        let anc = ancestors(&g, u).unwrap();
        assert_eq!(anc, vec![a, b, t]);
    }

    #[test]
    fn hidden_nodes_excluded() {
        let (mut g, [a, _, _, t, u, _, _]) = diamond();
        g.node_mut(t).zoom_hidden = true;
        let r = subgraph(&g, a).unwrap();
        assert!(!r.contains(t));
        assert!(!r.contains(u), "reachable only through hidden node");
    }

    #[test]
    fn query_on_hidden_root_is_error() {
        let (mut g, [a, ..]) = diamond();
        g.node_mut(a).deleted = true;
        assert!(matches!(
            subgraph(&g, a),
            Err(QueryError::NodeNotVisible(_))
        ));
    }
}
