//! Workflow execution (Definition 2.3) with provenance capture (§3.1).

use std::collections::HashMap;
use std::sync::Arc;

use lipstick_core::Tracker;
use lipstick_nrel::Tuple;
use lipstick_piglatin::eval::{execute as run_pig, ARelation, ATuple, Ann, Env};
use lipstick_piglatin::plan::{compile, Compiled};
use lipstick_piglatin::udf::UdfRegistry;

use crate::dag::{NodeIdx, Workflow};
use crate::error::{Result, WfError};
use crate::module::ModuleSpec;

/// External inputs for one workflow execution: instance name →
/// relation name → tuples.
#[derive(Debug, Clone, Default)]
pub struct WorkflowInput {
    data: HashMap<String, HashMap<String, Vec<Tuple>>>,
}

impl WorkflowInput {
    pub fn new() -> Self {
        WorkflowInput::default()
    }

    /// Provide tuples for an input node's relation (builder style).
    pub fn provide(
        mut self,
        instance: impl Into<String>,
        relation: impl Into<String>,
        tuples: Vec<Tuple>,
    ) -> Self {
        self.data
            .entry(instance.into())
            .or_default()
            .insert(relation.into(), tuples);
        self
    }

    pub(crate) fn get(&self, instance: &str, relation: &str) -> &[Tuple] {
        self.data
            .get(instance)
            .and_then(|m| m.get(relation))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// The mutable workflow state: per **module** (spec name), its state
/// relations with their provenance annotations (these persist across
/// executions — that is the point of the paper's `s` nodes).
///
/// State is keyed by module name, not node instance: the paper's
/// unfolded workflows map several DAG nodes to one module (the dealers
/// appear once in the bid phase and once in the purchase phase) and
/// those invocations share state. Nodes of the same module must never
/// be concurrently ready — in an unfolded loop they are ordered by the
/// DAG, which the parallel executor relies on.
#[derive(Debug, Clone)]
pub struct WorkflowState<R: Copy> {
    per_module: HashMap<String, HashMap<String, ARelation<R>>>,
}

impl<R: Copy> WorkflowState<R> {
    /// Empty state for every module, shaped by the state schemas.
    pub fn empty(wf: &Workflow) -> Self {
        let mut per_module: HashMap<String, HashMap<String, ARelation<R>>> = HashMap::new();
        for n in wf.nodes() {
            per_module.entry(n.spec.name.clone()).or_insert_with(|| {
                n.spec
                    .state_schema
                    .iter()
                    .map(|(rel, schema)| (rel.clone(), ARelation::empty(Arc::new(schema.clone()))))
                    .collect()
            });
        }
        WorkflowState { per_module }
    }

    /// Seed a state relation with base tuples (one token per tuple).
    pub fn seed<T: Tracker<Ref = R>>(
        &mut self,
        _wf: &Workflow,
        module: &str,
        relation: &str,
        tuples: Vec<Tuple>,
        tracker: &mut T,
        token_of: impl Fn(usize, &Tuple) -> String,
    ) -> Result<()> {
        let slot = self
            .per_module
            .get_mut(module)
            .and_then(|m| m.get_mut(relation))
            .ok_or_else(|| WfError::UnknownNode(format!("{module}.{relation}")))?;
        for (i, t) in tuples.into_iter().enumerate() {
            let prov = if T::TRACKING {
                tracker.base(&token_of(i, &t))
            } else {
                tracker.base("")
            };
            slot.rows.push(ATuple::plain(t, prov));
        }
        Ok(())
    }

    /// A state relation, if present.
    pub fn relation(&self, _wf: &Workflow, module: &str, rel: &str) -> Option<&ARelation<R>> {
        self.per_module.get(module).and_then(|m| m.get(rel))
    }

    /// Total state tuples across all modules.
    pub fn total_tuples(&self) -> usize {
        self.per_module
            .values()
            .flat_map(|m| m.values())
            .map(|r| r.rows.len())
            .sum()
    }

    pub(crate) fn module_state_mut(&mut self, module: &str) -> &mut HashMap<String, ARelation<R>> {
        self.per_module.entry(module.to_string()).or_default()
    }
}

/// Output of one workflow execution: for every output node, its output
/// relations (rows annotated with their `o` nodes).
#[derive(Debug, Clone)]
pub struct ExecutionOutput<R: Copy> {
    pub outputs: HashMap<String, HashMap<String, ARelation<R>>>,
}

impl<R: Copy> ExecutionOutput<R> {
    /// An output relation of an output node.
    pub fn relation(&self, instance: &str, rel: &str) -> Option<&ARelation<R>> {
        self.outputs.get(instance).and_then(|m| m.get(rel))
    }
}

/// What one module invocation produced.
pub(crate) struct InvocationResult<R: Copy> {
    /// Output relations, rows annotated with their `o` nodes.
    pub outputs: HashMap<String, ARelation<R>>,
    /// The full post-invocation state (rebound relations replaced,
    /// untouched ones carried through with their original refs).
    pub new_state: HashMap<String, ARelation<R>>,
}

/// Invoke one module: wrap inputs/state in `i`/`s` nodes, run
/// `Qstate; Qout`, wrap outputs in `o` nodes, and return the new state.
///
/// `external_inputs` holds raw workflow-input tuples for input nodes;
/// `edge_inputs` holds relations staged by upstream modules (their rows
/// already annotated with `o`-node refs in this tracker's space).
// Nine arguments mirror the module-invocation protocol (inputs, state,
// tracker, registry, execution counter); bundling them would only move
// the list into a struct literal at each call site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn invoke_module<T: Tracker>(
    instance: &str,
    spec: &ModuleSpec,
    compiled: &Compiled,
    external_inputs: &HashMap<String, Vec<Tuple>>,
    mut edge_inputs: HashMap<String, ARelation<T::Ref>>,
    state_rels: HashMap<String, ARelation<T::Ref>>,
    tracker: &mut T,
    udfs: &UdfRegistry,
    execution: u32,
) -> Result<InvocationResult<T::Ref>> {
    // Invocations are identified by the *module name* (spec.name): the
    // same module may label several DAG nodes (unfolded loops), and zoom
    // must treat all of their invocations as one unit (§4.1).
    tracker.begin_invocation(&spec.name, execution);
    let mut env: Env<T::Ref> = Env::new();

    // ---- inputs: wrap each tuple in an `i` node ----
    for (rel, schema) in &spec.input_schema {
        let wrapped = if let Some(tuples) = external_inputs.get(rel) {
            let mut r = ARelation::empty(Arc::new(schema.clone()));
            for (i, t) in tuples.iter().enumerate() {
                let wf_in = if T::TRACKING {
                    tracker.workflow_input(&format!("I{execution}.{instance}.{rel}.{i}"))
                } else {
                    tracker.workflow_input("")
                };
                let prov = tracker.module_input(wf_in);
                r.rows.push(ATuple::plain(t.clone(), prov));
            }
            r
        } else {
            let upstream = edge_inputs
                .remove(rel)
                .unwrap_or_else(|| ARelation::empty(Arc::new(schema.clone())));
            let mut r = ARelation::empty(upstream.schema.clone());
            for row in upstream.rows {
                let prov = tracker.module_input(row.ann.prov);
                r.rows.push(ATuple {
                    tuple: row.tuple,
                    ann: Ann {
                        prov,
                        vrefs: row.ann.vrefs,
                    },
                    members: row.members,
                });
            }
            r
        };
        env.bind(rel.clone(), wrapped);
    }

    // ---- state: wrap each tuple in an `s` node ----
    for (rel, _schema) in &spec.state_schema {
        let stored = state_rels.get(rel).expect("state initialized per schema");
        let mut r = ARelation::empty(stored.schema.clone());
        for row in &stored.rows {
            let prov = tracker.state_node(row.ann.prov);
            r.rows.push(ATuple {
                tuple: row.tuple.clone(),
                ann: Ann {
                    prov,
                    vrefs: row.ann.vrefs.clone(),
                },
                members: row.members.clone(),
            });
        }
        env.bind(rel.clone(), r);
    }

    // ---- run Qstate; Qout ----
    run_pig(compiled, &mut env, tracker, udfs).map_err(|error| WfError::Pig {
        node: instance.to_string(),
        error,
    })?;

    // ---- commit state ----
    let mut new_state = state_rels;
    for (rel, _schema) in &spec.state_schema {
        if compiled.schemas.contains_key(rel) {
            let mut rebound = env.take(rel).expect("script-bound relations stay in env");
            // Value references do not cross invocation boundaries: a
            // v-node belongs to the invocation that computed it (its
            // edges end at that invocation's `o` nodes, Figure 2(c));
            // later invocations pair state values as constants.
            for row in &mut rebound.rows {
                row.ann.vrefs.clear();
                row.members.clear();
            }
            new_state.insert(rel.clone(), rebound);
        }
        // Untouched state relations keep their stored (unwrapped) rows:
        // `s` nodes are per-invocation views, not part of the state.
    }

    // ---- outputs: wrap each tuple in an `o` node ----
    let mut outputs = HashMap::new();
    for (rel, _schema) in &spec.output_schema {
        let produced = env.take(rel).ok_or_else(|| WfError::MissingOutput {
            node: instance.to_string(),
            relation: rel.clone(),
        })?;
        let mut r = ARelation::empty(produced.schema.clone());
        for row in produced.rows {
            let vnodes: Vec<T::Ref> = row.ann.vref_nodes().collect();
            let prov = tracker.module_output(row.ann.prov, &vnodes);
            r.rows.push(ATuple {
                tuple: row.tuple,
                ann: Ann {
                    prov,
                    vrefs: row.ann.vrefs,
                },
                members: Vec::new(),
            });
        }
        outputs.insert(rel.clone(), r);
    }
    tracker.end_invocation();
    Ok(InvocationResult { outputs, new_state })
}

/// A workflow executor with a per-node compiled-plan cache (module
/// scripts compile once; schemas are fixed per specification).
pub struct Executor<'a> {
    wf: &'a Workflow,
    udfs: &'a UdfRegistry,
    compiled: Vec<Option<Arc<Compiled>>>,
}

impl<'a> Executor<'a> {
    pub fn new(wf: &'a Workflow, udfs: &'a UdfRegistry) -> Self {
        Executor {
            wf,
            udfs,
            compiled: vec![None; wf.len()],
        }
    }

    /// The workflow being executed.
    pub fn workflow(&self) -> &Workflow {
        self.wf
    }

    pub(crate) fn compiled_for(&mut self, idx: NodeIdx) -> Result<Arc<Compiled>> {
        if self.compiled[idx.index()].is_none() {
            let node = self.wf.node(idx);
            let mut schemas = lipstick_piglatin::plan::SchemaMap::new();
            for (rel, schema) in node.spec.input_schema.iter().chain(&node.spec.state_schema) {
                schemas.insert(rel.clone(), Arc::new(schema.clone()));
            }
            let program =
                lipstick_piglatin::parse(&node.spec.combined_script()).map_err(|error| {
                    WfError::Pig {
                        node: node.instance.clone(),
                        error,
                    }
                })?;
            let compiled =
                compile(&program, &schemas, self.udfs).map_err(|error| WfError::Pig {
                    node: node.instance.clone(),
                    error,
                })?;
            self.compiled[idx.index()] = Some(Arc::new(compiled));
        }
        Ok(self.compiled[idx.index()].clone().expect("just inserted"))
    }

    /// Run a single execution (Definition 2.3): every module once, in
    /// topological order.
    pub fn execute_once<T: Tracker>(
        &mut self,
        input: &WorkflowInput,
        state: &mut WorkflowState<T::Ref>,
        tracker: &mut T,
        execution: u32,
    ) -> Result<ExecutionOutput<T::Ref>> {
        // Relations staged on edges: (consumer, relation) → rows.
        let mut staged: HashMap<(NodeIdx, String), ARelation<T::Ref>> = HashMap::new();
        let mut result = ExecutionOutput {
            outputs: HashMap::new(),
        };

        for &idx in self.wf.topo_order() {
            let compiled = self.compiled_for(idx)?;
            let node = self.wf.node(idx);
            let is_input_node = self.wf.input_nodes().contains(&idx);
            let is_output_node = self.wf.output_nodes().contains(&idx);

            let mut external_inputs = HashMap::new();
            let mut edge_inputs = HashMap::new();
            for (rel, _schema) in &node.spec.input_schema {
                if is_input_node {
                    external_inputs.insert(rel.clone(), input.get(&node.instance, rel).to_vec());
                } else if let Some(r) = staged.remove(&(idx, rel.clone())) {
                    edge_inputs.insert(rel.clone(), r);
                }
            }
            let state_rels = std::mem::take(state.module_state_mut(&node.spec.name));

            let inv = invoke_module(
                &node.instance,
                &node.spec,
                &compiled,
                &external_inputs,
                edge_inputs,
                state_rels,
                tracker,
                self.udfs,
                execution,
            )?;
            *state.module_state_mut(&node.spec.name) = inv.new_state;

            // ---- route along edges (vrefs stay in their invocation;
            // downstream modules see the tuple through its `o` node) ----
            for edge in self.wf.outgoing(idx) {
                for rel in &edge.relations {
                    let out = inv.outputs.get(rel).expect("edge validated against Sout");
                    let mut routed = out.clone();
                    for row in &mut routed.rows {
                        row.ann.vrefs.clear();
                    }
                    staged.insert((edge.to, rel.clone()), routed);
                }
            }
            if is_output_node {
                result.outputs.insert(node.instance.clone(), inv.outputs);
            }
        }
        Ok(result)
    }
}

/// One-shot convenience: run a single execution.
pub fn execute_once<T: Tracker>(
    wf: &Workflow,
    input: &WorkflowInput,
    state: &mut WorkflowState<T::Ref>,
    tracker: &mut T,
    udfs: &UdfRegistry,
    execution: u32,
) -> Result<ExecutionOutput<T::Ref>> {
    Executor::new(wf, udfs).execute_once(input, state, tracker, execution)
}

/// Run a sequence of executions E₀…Eₙ (Definition 2.3's sequences):
/// state threads from each execution into the next.
pub fn execute_sequence<T: Tracker>(
    wf: &Workflow,
    inputs: &[WorkflowInput],
    state: &mut WorkflowState<T::Ref>,
    tracker: &mut T,
    udfs: &UdfRegistry,
) -> Result<Vec<ExecutionOutput<T::Ref>>> {
    let mut executor = Executor::new(wf, udfs);
    let mut outputs = Vec::with_capacity(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        outputs.push(executor.execute_once(input, state, tracker, i as u32)?);
    }
    Ok(outputs)
}

/// Pretty-print an execution's outputs (used by examples).
pub fn render_outputs<R: Copy>(out: &ExecutionOutput<R>) -> String {
    let mut lines: Vec<String> = Vec::new();
    let mut instances: Vec<&String> = out.outputs.keys().collect();
    instances.sort();
    for instance in instances {
        let rels = &out.outputs[instance];
        let mut names: Vec<&String> = rels.keys().collect();
        names.sort();
        for rel in names {
            for row in &rels[rel].rows {
                lines.push(format!("{instance}.{rel}: {}", row.tuple));
            }
        }
    }
    lines.join("\n")
}
