//! The server: one shared session, a worker pool, and the write epoch.
//!
//! ## Concurrency model
//!
//! The session sits behind an [`RwLock`]. Read-only statements take the
//! read side and execute concurrently — `proql::Session::run_read`
//! borrows `&self`, and all backends (resident graph, paged log with
//! its sharded fault cache, append log) are `Sync`. Mutating
//! statements **group-commit**: each writer enqueues its statement and
//! contends for the write side; the winner drains the whole queue as
//! batch leader under one lock hold, one deferred reach-index repair,
//! and — if anything observably changed — one bump of the **write
//! epoch**, an atomic counter that stamps every cached result; a stale
//! stamp is what invalidates a cache entry. The epoch can only change
//! while the write lock is held, so a result computed under a read
//! guard is always tagged with the epoch it actually executed at.
//!
//! Connections are accepted on one thread and handed to a fixed pool of
//! workers over an MPMC channel; each worker owns a connection for its
//! lifetime (the line protocol is persistent, the HTTP shim is
//! one-shot), so `workers` bounds the number of concurrently served
//! clients.
//!
//! ## Overload and shutdown
//!
//! Three opt-in guards bound the damage a hostile or saturating client
//! can do: the write queue **sheds** with `BUSY retry_after_ms=` once
//! `write_queue_limit` mutations are already waiting (the statement is
//! not executed — a verbatim retry is safe); reads are cancelled
//! cooperatively at `request_deadline_us`; and a connection that stalls
//! mid-request past `idle_timeout_us` is dropped (the slowloris
//! guard). [`ServerHandle::shutdown`] is graceful: every statement in
//! flight finishes, its reply reaches the wire, and the storage tail is
//! synced before the call returns — no acked write is ever lost to a
//! shutdown.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lipstick_core::obs::{self, Tracer};
use lipstick_proql::ast::Statement;
use lipstick_proql::parser::parse_statement;
use lipstick_proql::result::{json_escape, QueryOutput};
use lipstick_proql::{ProqlError, Session};

use crate::cache::{CachedResult, QueryCache};
use crate::proto::{
    classify_first_line, percent_decode, read_http_request_rest, write_busy, write_err,
    write_http_json, write_http_text, write_ok, FirstLine,
};
use crate::qlog::{QueryEvent, QueryLog, QueryLogConfig};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — the number of concurrently served connections.
    pub workers: usize,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Read statements at least this slow (server-side, microseconds)
    /// land in the slow-query ring with their full trace. 0 records
    /// every traced read; `u64::MAX` effectively disables the ring.
    pub slow_threshold_us: u64,
    /// Structured query log (JSONL capture for `bench_replay`). `None`
    /// — the default — keeps the hot path entirely log-free.
    pub query_log: Option<QueryLogConfig>,
    /// Keep the full trace of every Nth read in the slow-query ring
    /// regardless of latency, so `GET /slow` shows a representative
    /// sample and not just outliers. 0 (the default) disables sampling.
    pub trace_sample_every: u64,
    /// On an append-backed session, fold the tail segment into a fresh
    /// sealed base (`COMPACT`) once this many successful mutations have
    /// accumulated since the last compaction. The batch leader issues
    /// it under the write lock it already holds, so readers never see a
    /// half-compacted store. 0 (the default) disables auto-compaction;
    /// other backends ignore the knob.
    pub compact_every: u64,
    /// Per-request deadline for read statements, microseconds. The
    /// executor checks it cooperatively at span boundaries and cancels
    /// with `deadline exceeded` once it passes; mutations never carry
    /// a deadline (a write is never abandoned half-applied). 0 (the
    /// default) disables the check.
    pub request_deadline_us: u64,
    /// Bound on the group-commit write queue. A mutation arriving
    /// while this many are already queued is **shed** — answered
    /// `BUSY retry_after_ms=<hint>` without executing — instead of
    /// piling onto a write lock it may wait on unboundedly. 0 (the
    /// default) leaves the queue unbounded.
    pub write_queue_limit: usize,
    /// Idle/read timeout per connection, microseconds: a peer that
    /// holds a connection without completing a request line for this
    /// long is disconnected (the slowloris guard). 0 (the default)
    /// waits forever.
    pub idle_timeout_us: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            cache_capacity: 256,
            slow_threshold_us: 1_000,
            query_log: None,
            trace_sample_every: 0,
            compact_every: 0,
            request_deadline_us: 0,
            write_queue_limit: 0,
            idle_timeout_us: 0,
        }
    }
}

/// Slow-query ring capacity: old entries fall off the back.
const SLOW_LOG_CAPACITY: usize = 64;

/// One slow read, kept with its full span trace for `GET /slow`.
struct SlowEntry {
    /// Canonical statement rendering (the cache key).
    stmt: String,
    time_us: u64,
    reads: u64,
    epoch: u64,
    /// `QueryTrace::to_json()` — a JSON array of span objects.
    trace_json: String,
}

/// Process-global registry series the server feeds. Per-handle exact
/// counts stay on [`Shared`]'s atomics (tests pin those); these series
/// aggregate across every server in the process for `GET /metrics`.
struct Instruments {
    queries: Arc<obs::Counter>,
    mutations: Arc<obs::Counter>,
    cache_hits: Arc<obs::Counter>,
    cache_misses: Arc<obs::Counter>,
    connections: Arc<obs::Counter>,
    response_us: Arc<obs::Histogram>,
    epoch: Arc<obs::Gauge>,
    /// Heap-byte gauges, one per disjoint memory component; refreshed
    /// by [`Shared::refresh_heap_gauges`] on `GET /metrics` and
    /// `STATS`, so their sum matches the `STATS` memory breakdown.
    graph_heap: Arc<obs::Gauge>,
    reach_heap: Arc<obs::Gauge>,
    paged_log_heap: Arc<obs::Gauge>,
    fault_cache_heap: Arc<obs::Gauge>,
    serve_cache_heap: Arc<obs::Gauge>,
    /// Mutations shed with `BUSY` because the write queue was full.
    shed: Arc<obs::Counter>,
    /// Reads cancelled at the per-request deadline.
    deadline_exceeded: Arc<obs::Counter>,
    /// Wall time of the last graceful shutdown drain, microseconds.
    shutdown_drain_us: Arc<obs::Gauge>,
}

impl Instruments {
    fn get() -> Instruments {
        // Touch the storage layer's IO error counter so a scrape that
        // races the first file operation still sees the series (at 0).
        let _ = lipstick_storage::io::io_errors_counter();
        let r = obs::registry();
        Instruments {
            queries: r.counter(
                "lipstick_serve_queries_total",
                "Statements received over both protocols, parse errors included",
            ),
            mutations: r.counter(
                "lipstick_serve_mutations_total",
                "Successful mutating statements",
            ),
            cache_hits: r.counter(
                "lipstick_serve_cache_hits_total",
                "Read statements answered from the plan-keyed result cache",
            ),
            cache_misses: r.counter(
                "lipstick_serve_cache_misses_total",
                "Read statements that executed because no fresh cache entry existed",
            ),
            connections: r.counter(
                "lipstick_serve_connections_total",
                "Connections accepted (line protocol and HTTP shim)",
            ),
            response_us: r.histogram(
                "lipstick_serve_response_us",
                "Server-side wall time per statement, microseconds",
                obs::LATENCY_BUCKETS_US,
            ),
            epoch: r.gauge(
                "lipstick_serve_epoch",
                "Write epoch of the most recently mutated server in this process",
            ),
            graph_heap: r.gauge(
                "lipstick_core_graph_heap_bytes",
                "Heap bytes held by the resident provenance graph (most recently scraped server)",
            ),
            reach_heap: r.gauge(
                "lipstick_core_reach_heap_bytes",
                "Heap bytes held by the reachability closure",
            ),
            paged_log_heap: r.gauge(
                "lipstick_storage_paged_log_heap_bytes",
                "Heap bytes held by the paged log (raw bytes, footer index, invocations)",
            ),
            fault_cache_heap: r.gauge(
                "lipstick_storage_fault_cache_heap_bytes",
                "Heap bytes held by the paged log's sharded record fault cache",
            ),
            serve_cache_heap: r.gauge(
                "lipstick_serve_cache_heap_bytes",
                "Heap bytes held by the server's plan-keyed result cache",
            ),
            shed: r.counter(
                "lipstick_serve_shed_total",
                "Mutations answered BUSY because the bounded write queue was full",
            ),
            deadline_exceeded: r.counter(
                "lipstick_serve_deadline_exceeded_total",
                "Read statements cancelled at the per-request deadline",
            ),
            shutdown_drain_us: r.gauge(
                "lipstick_serve_shutdown_drain_us",
                "Wall time of the last graceful shutdown drain, microseconds",
            ),
        }
    }
}

/// State shared by every worker.
struct Shared {
    session: RwLock<Session>,
    /// Bumped (under the session write lock) by every successful
    /// mutation; stamps cached results.
    epoch: AtomicU64,
    cache: QueryCache,
    queries: AtomicU64,
    mutations: AtomicU64,
    instruments: Instruments,
    slow: Mutex<VecDeque<SlowEntry>>,
    slow_threshold_us: u64,
    /// Structured query log; `None` keeps the path log-free.
    qlog: Option<QueryLog>,
    /// Connection ids, assigned at accept; stamped into log events.
    clients: AtomicU64,
    /// Read counter driving 1-in-N full-trace sampling.
    sample_tick: AtomicU64,
    trace_sample_every: u64,
    /// Mutations waiting for a batch leader (group commit). Writers
    /// enqueue here, then contend for the session write lock; whoever
    /// wins drains the whole queue under one lock hold, one reach-index
    /// repair flush, and one epoch bump.
    write_queue: Mutex<VecDeque<Arc<WriteSlot>>>,
    /// Successful mutations since the last auto-compaction.
    writes_since_compact: AtomicU64,
    compact_every: u64,
    /// Read deadline, microseconds; 0 disables.
    request_deadline_us: u64,
    /// Write-queue bound; 0 leaves it unbounded.
    write_queue_limit: usize,
    /// Per-connection read timeout, microseconds; 0 waits forever.
    idle_timeout_us: u64,
    /// Wall time the last write batch spent holding the write lock —
    /// the basis of the `BUSY retry_after_ms` hint.
    last_batch_us: AtomicU64,
    /// Live connections by client id. Graceful shutdown half-closes
    /// each one's read side so workers finish the statement in flight,
    /// deliver its reply, then see EOF and exit.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// One queued mutation: the parsed statement going in, the leader's
/// answer coming out. The enqueuing worker discovers the result after
/// it acquires the write lock itself (by then a leader has usually
/// filled it in).
struct WriteSlot {
    stmt: Statement,
    state: Mutex<Option<SlotResult>>,
}

/// What the batch leader records per drained slot.
struct SlotResult {
    result: Result<CachedResult, String>,
    reads: u64,
    epoch: u64,
}

/// A non-success answer, typed by what the client should do with it:
/// a `Message` names what went wrong with *this* statement; `Busy`
/// means the server shed it unexecuted and a verbatim retry is safe.
enum ErrorReply {
    Message(String),
    Busy { retry_after_ms: u64 },
}

impl ErrorReply {
    /// One-line rendering for the structured query log.
    fn message(&self) -> String {
        match self {
            ErrorReply::Message(m) => m.clone(),
            ErrorReply::Busy { retry_after_ms } => {
                format!("busy: write queue full; retry_after_ms={retry_after_ms}")
            }
        }
    }
}

/// The outcome of one statement, ready for either wire format.
struct Outcome {
    result: Result<CachedResult, ErrorReply>,
    cache_hit: bool,
    epoch: u64,
    /// Server-side wall time answering this statement, microseconds.
    time_us: u64,
    /// Backend record decodes charged to this statement. Deltas of the
    /// session-wide counter, so concurrent readers can bleed into each
    /// other's figures — per-statement numbers are exact only under
    /// sequential load; the process totals are always exact.
    reads: u64,
}

impl Shared {
    /// Parse, normalize, consult the cache, execute, and (for read-only
    /// statements) populate the cache. The single execution path both
    /// protocols share.
    fn run_statement(&self, input: &str, client: u64) -> Outcome {
        let start = Instant::now();
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.instruments.queries.inc();
        let stmt = match parse_statement(input) {
            Ok(stmt) => stmt,
            Err(e) => {
                let outcome = Outcome {
                    result: Err(ErrorReply::Message(e.to_string())),
                    cache_hit: false,
                    epoch: self.epoch.load(Ordering::Acquire),
                    time_us: elapsed_us(start),
                    reads: 0,
                };
                self.log_event(input, "", &outcome, client);
                return outcome;
            }
        };
        let outcome = if matches!(stmt, Statement::Stats) {
            // STATS reports live state (including these very counters),
            // so it bypasses the cache and gets the server's own lines
            // appended.
            self.run_stats(start)
        } else if stmt.is_read_only() {
            self.run_read(&stmt, start)
        } else {
            self.run_write(&stmt, start)
        };
        self.instruments.response_us.observe(outcome.time_us);
        self.log_event(input, &stmt.to_string(), &outcome, client);
        outcome
    }

    /// Append one event to the structured query log, if one is
    /// configured. The result fingerprint hashes the text payload —
    /// what a line-protocol client would have received — so replay can
    /// check byte-identity without storing the bytes.
    fn log_event(&self, input: &str, key: &str, outcome: &Outcome, client: u64) {
        let Some(qlog) = &self.qlog else { return };
        let (verdict, fnv) = match &outcome.result {
            Ok(result) => ("ok", QueryEvent::fingerprint(&result.text)),
            Err(e @ ErrorReply::Message(_)) => ("err", QueryEvent::fingerprint(&e.message())),
            // Sheds are load events, not statement outcomes: replaying
            // one won't reproduce the fingerprint, so tag it apart.
            Err(e @ ErrorReply::Busy { .. }) => ("busy", QueryEvent::fingerprint(&e.message())),
        };
        qlog.append(QueryEvent {
            seq: 0, // assigned by the log, under its lock
            ts_us: qlog.now_us(),
            client,
            stmt: input.to_string(),
            key: key.to_string(),
            outcome: verdict.to_string(),
            cache_hit: outcome.cache_hit,
            time_us: outcome.time_us,
            reads: outcome.reads,
            epoch: outcome.epoch,
            result_fnv: fnv,
        });
    }

    /// 1-in-N trace sampling: true when this read's full trace should
    /// be retained regardless of latency.
    fn trace_sampled(&self) -> bool {
        let every = self.trace_sample_every;
        every > 0
            && self
                .sample_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(every)
    }

    /// Recompute the process-wide heap gauges from this server's live
    /// state. Like the epoch gauge, last writer wins when several
    /// servers share the process.
    fn refresh_heap_gauges(&self) {
        use lipstick_core::obs::HeapSize;
        let report = {
            let session = self.session.read().unwrap_or_else(|e| e.into_inner());
            session.memory_report()
        };
        let (mut graph, mut reach, mut paged, mut fault) = (0i64, 0i64, 0i64, 0i64);
        for (group, component, bytes) in report {
            match (group, component) {
                ("graph", _) => graph += bytes as i64,
                ("reach", _) => reach += bytes as i64,
                ("paged_log", "fault_cache") => fault += bytes as i64,
                ("paged_log", _) => paged += bytes as i64,
                _ => {}
            }
        }
        self.instruments.graph_heap.set(graph);
        self.instruments.reach_heap.set(reach);
        self.instruments.paged_log_heap.set(paged);
        self.instruments.fault_cache_heap.set(fault);
        self.instruments
            .serve_cache_heap
            .set(self.cache.heap_bytes() as i64);
    }

    fn run_read(&self, stmt: &Statement, start: Instant) -> Outcome {
        // The statement's canonical pretty-printing is the cache key:
        // spelling differences (case, whitespace, comments, trailing
        // ';', optional keywords like `OF` or `ASC`) normalize away,
        // and the key is itself a valid statement — handy in logs.
        let key = stmt.to_string();
        // EXPLAIN ANALYZE answers are measurements; replaying one from
        // the cache would report timings of some earlier execution, so
        // the statement always executes fresh.
        let cacheable = !matches!(stmt, Statement::ExplainAnalyze(_));
        // Serving a hit needs no session lock: the entry's stamp names
        // the epoch it was computed at, and epochs never repeat.
        let epoch = self.epoch.load(Ordering::Acquire);
        if cacheable {
            if let Some(result) = self.cache.get(&key, epoch) {
                self.instruments.cache_hits.inc();
                return Outcome {
                    result: Ok(result),
                    cache_hit: true,
                    epoch,
                    time_us: elapsed_us(start),
                    reads: 0,
                };
            }
            self.instruments.cache_misses.inc();
        }
        let session = self.session.read().unwrap_or_else(|e| e.into_inner());
        // Re-read under the read guard: a writer may have bumped the
        // epoch between the cache probe and lock acquisition, and the
        // stamp must name the epoch this execution actually sees.
        let epoch = self.epoch.load(Ordering::Acquire);
        let reads_before = session.records_read();
        let tracer = Tracer::new();
        // The deadline clock starts at receipt (`start`), not lock
        // acquisition: time spent waiting out a write batch counts.
        let deadline = (self.request_deadline_us > 0)
            .then(|| start + Duration::from_micros(self.request_deadline_us));
        let executed = session.run_read_stmt_with(stmt, Some(&tracer), deadline);
        let reads = session.records_read().saturating_sub(reads_before) as u64;
        drop(session);
        let time_us = elapsed_us(start);
        match executed {
            Ok(out) => {
                let result = CachedResult {
                    text: out.to_string(),
                    json: out.to_json(),
                };
                if cacheable {
                    self.cache.insert(key.clone(), epoch, result.clone());
                }
                if time_us >= self.slow_threshold_us || self.trace_sampled() {
                    self.record_slow(SlowEntry {
                        stmt: key,
                        time_us,
                        reads,
                        epoch,
                        trace_json: tracer.finish().to_json(),
                    });
                }
                Outcome {
                    result: Ok(result),
                    cache_hit: false,
                    epoch,
                    time_us,
                    reads,
                }
            }
            Err(e) => {
                if matches!(e, ProqlError::DeadlineExceeded) {
                    self.instruments.deadline_exceeded.inc();
                }
                Outcome {
                    result: Err(ErrorReply::Message(e.to_string())),
                    cache_hit: false,
                    epoch,
                    time_us,
                    reads,
                }
            }
        }
    }

    /// `STATS` bypasses the cache (it reports live counters) and
    /// appends the server's own state to the session's report.
    fn run_stats(&self, start: Instant) -> Outcome {
        let session = self.session.read().unwrap_or_else(|e| e.into_inner());
        let epoch = self.epoch.load(Ordering::Acquire);
        let reads_before = session.records_read();
        let executed = session.run_read_stmt(&Statement::Stats);
        let reads = session.records_read().saturating_sub(reads_before) as u64;
        drop(session);
        match executed {
            Ok(out) => {
                use lipstick_core::obs::HeapSize;
                let (hits, misses) = (self.cache.hits(), self.cache.misses());
                let mut text = format!(
                    "{out}\nserver: epoch={epoch} queries={} mutations={} slow-log={}\n\
                     server: cache hits={hits} misses={misses} entries={} bytes={} evictions={}",
                    self.queries.load(Ordering::Relaxed),
                    self.mutations.load(Ordering::Relaxed),
                    self.slow.lock().unwrap_or_else(|e| e.into_inner()).len(),
                    self.cache.len(),
                    self.cache.bytes(),
                    self.cache.evictions(),
                );
                // The serve-side memory components, in the same
                // `  memory <group>.<component>=<bytes>` shape the
                // session's report uses, so one parse covers both.
                for (name, bytes) in self.cache.heap_breakdown() {
                    text.push_str(&format!("\n  memory serve_cache.{name}={bytes}"));
                }
                if let Some(qlog) = &self.qlog {
                    text.push_str(&format!(
                        "\nserver: query-log events={} generation={}",
                        qlog.events(),
                        qlog.generation()
                    ));
                }
                // STATS is the other scrape point besides /metrics:
                // leave the gauges agreeing with what was just printed.
                self.refresh_heap_gauges();
                let combined = QueryOutput::Text(text);
                Outcome {
                    result: Ok(CachedResult {
                        text: combined.to_string(),
                        json: combined.to_json(),
                    }),
                    cache_hit: false,
                    epoch,
                    time_us: elapsed_us(start),
                    reads,
                }
            }
            Err(e) => Outcome {
                result: Err(ErrorReply::Message(e.to_string())),
                cache_hit: false,
                epoch,
                time_us: elapsed_us(start),
                reads,
            },
        }
    }

    /// Group commit: enqueue the mutation, then contend for the write
    /// lock. The winner becomes batch leader and executes *every*
    /// queued mutation — its own included — under one lock hold, one
    /// deferred reach-index repair (one `lipstick_proql_index_repair_us`
    /// observation), and at most one epoch bump. Losers acquire the
    /// lock to find their slot already answered. Under sequential load
    /// every batch has exactly one statement and the behaviour (epoch
    /// per mutation, repair per mutation) is unchanged.
    fn run_write(&self, stmt: &Statement, start: Instant) -> Outcome {
        let slot = Arc::new(WriteSlot {
            stmt: stmt.clone(),
            state: Mutex::new(None),
        });
        {
            // Admission and enqueue under ONE lock hold: two writers
            // racing the last slot can't both pass a separate check.
            let mut queue = self.write_queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.write_queue_limit > 0 && queue.len() >= self.write_queue_limit {
                drop(queue);
                self.instruments.shed.inc();
                return Outcome {
                    result: Err(ErrorReply::Busy {
                        retry_after_ms: self.retry_after_ms(),
                    }),
                    cache_hit: false,
                    epoch: self.epoch.load(Ordering::Acquire),
                    time_us: elapsed_us(start),
                    reads: 0,
                };
            }
            queue.push_back(slot.clone());
        }
        let mut session = self.session.write().unwrap_or_else(|e| e.into_inner());
        let unanswered = slot
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_none();
        if unanswered {
            self.lead_write_batch(&mut session);
        }
        drop(session);
        // The leader answers every drained slot before releasing the
        // lock, so an empty slot here is unreachable — but the serve
        // path must degrade to an error reply, never panic.
        let done = slot.state.lock().unwrap_or_else(|e| e.into_inner()).take();
        match done {
            Some(done) => Outcome {
                result: done.result.map_err(ErrorReply::Message),
                cache_hit: false,
                epoch: done.epoch,
                time_us: elapsed_us(start),
                reads: done.reads,
            },
            None => Outcome {
                result: Err(ErrorReply::Message(
                    "internal error: write batch left a slot unanswered".to_string(),
                )),
                cache_hit: false,
                epoch: self.epoch.load(Ordering::Acquire),
                time_us: elapsed_us(start),
                reads: 0,
            },
        }
    }

    /// The `BUSY` hint: roughly one recent batch drain time, so a
    /// retry tends to land after the queue has turned over once.
    /// Before any batch has run (or if one finished in under 1 ms)
    /// fall back to a nominal 10 ms.
    fn retry_after_ms(&self) -> u64 {
        match self.last_batch_us.load(Ordering::Relaxed) / 1_000 {
            0 => 10,
            ms => ms.clamp(1, 1_000),
        }
    }

    /// Drain the write queue as batch leader. Caller holds the session
    /// write lock; our own slot is somewhere in the queue.
    fn lead_write_batch(&self, session: &mut Session) {
        let batch_start = Instant::now();
        let batch: Vec<Arc<WriteSlot>> = self
            .write_queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        // Defer reach-index repair across the whole batch: mutations
        // record their changed node sets, and one union repair runs at
        // the end (no mutation *reads* the closure — deletion cones and
        // zoom plans are computed by direct traversal).
        session.begin_write_batch();
        let mut any_changed = false;
        let mut successes = 0u64;
        let mut results = Vec::with_capacity(batch.len());
        for slot in &batch {
            let was_paged = session.is_paged();
            let reads_before = session.records_read();
            let result = session.run_stmt(&slot.stmt);
            let reads = session.records_read().saturating_sub(reads_before) as u64;
            // A mutating statement promotes a paged backend *before*
            // executing, so even a failed one (e.g. `ZOOM OUT TO
            // Bogus`) can leave the session resident — where identical
            // queries render different visited-cost figures. Any
            // observable change must bump the epoch, or cached
            // paged-era results would be served as if nothing happened.
            any_changed |= result.is_ok() || (was_paged && !session.is_paged());
            if result.is_ok() {
                successes += 1;
                self.mutations.fetch_add(1, Ordering::Relaxed);
                self.instruments.mutations.inc();
            }
            results.push((result, reads));
        }
        session.end_write_batch();
        self.maybe_compact(session, successes);
        let epoch = if any_changed {
            // Bump while still exclusive: no reader can observe the
            // changed session under the old epoch.
            let bumped = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            self.instruments.epoch.set(bumped as i64);
            bumped
        } else {
            self.epoch.load(Ordering::Acquire)
        };
        for (slot, (result, reads)) in batch.iter().zip(results) {
            let answer = SlotResult {
                result: result
                    .map(|out| CachedResult {
                        text: out.to_string(),
                        json: out.to_json(),
                    })
                    .map_err(|e| e.to_string()),
                reads,
                epoch,
            };
            *slot.state.lock().unwrap_or_else(|e| e.into_inner()) = Some(answer);
        }
        // Feeds the BUSY retry_after_ms hint; only whole batches count
        // (an empty drain would just make the hint optimistic).
        if !batch.is_empty() {
            self.last_batch_us
                .store(elapsed_us(batch_start), Ordering::Relaxed);
        }
    }

    /// Auto-compaction: once `compact_every` successful mutations have
    /// accumulated on an append-backed session, fold the tail into a
    /// fresh sealed base. Runs under the batch leader's write lock and
    /// after the repair flush; compaction preserves ids and visibility,
    /// so neither the reach index nor the result cache is invalidated
    /// (no epoch bump). A refusal — e.g. modules are zoomed out — just
    /// leaves the counter armed for the next batch.
    fn maybe_compact(&self, session: &mut Session, successes: u64) {
        if self.compact_every == 0 || successes == 0 || !session.is_append() {
            return;
        }
        let since = self
            .writes_since_compact
            .fetch_add(successes, Ordering::Relaxed)
            + successes;
        if since >= self.compact_every && session.run_stmt(&Statement::Compact).is_ok() {
            self.writes_since_compact.store(0, Ordering::Relaxed);
        }
    }

    fn record_slow(&self, entry: SlowEntry) {
        let mut ring = self.slow.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == SLOW_LOG_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Render the newest `n` slow entries, most recent first, as JSON.
    fn render_slow_json(&self, n: usize) -> String {
        let ring = self.slow.lock().unwrap_or_else(|e| e.into_inner());
        let entries: Vec<String> = ring
            .iter()
            .rev()
            .take(n)
            .map(|e| {
                format!(
                    r#"{{"stmt":"{}","time_us":{},"reads":{},"epoch":{},"trace":{}}}"#,
                    json_escape(&e.stmt),
                    e.time_us,
                    e.reads,
                    e.epoch,
                    e.trace_json
                )
            })
            .collect();
        format!(
            r#"{{"ok":true,"count":{},"slow":[{}]}}"#,
            entries.len(),
            entries.join(",")
        )
    }
}

fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// A ProQL server ready to bind.
pub struct Server {
    shared: Arc<Shared>,
    config: ServerConfig,
}

impl Server {
    /// Wrap a session (resident or paged) for serving.
    pub fn new(session: Session, config: ServerConfig) -> Server {
        Server {
            shared: Arc::new(Shared {
                session: RwLock::new(session),
                epoch: AtomicU64::new(0),
                cache: QueryCache::new(config.cache_capacity),
                queries: AtomicU64::new(0),
                mutations: AtomicU64::new(0),
                instruments: Instruments::get(),
                slow: Mutex::new(VecDeque::new()),
                slow_threshold_us: config.slow_threshold_us,
                qlog: config.query_log.clone().map(QueryLog::open),
                clients: AtomicU64::new(0),
                sample_tick: AtomicU64::new(0),
                trace_sample_every: config.trace_sample_every,
                write_queue: Mutex::new(VecDeque::new()),
                writes_since_compact: AtomicU64::new(0),
                compact_every: config.compact_every,
                request_deadline_us: config.request_deadline_us,
                write_queue_limit: config.write_queue_limit,
                idle_timeout_us: config.idle_timeout_us,
                last_batch_us: AtomicU64::new(0),
                conns: Mutex::new(HashMap::new()),
            }),
            config,
        }
    }

    /// Bind and start serving. `addr` may name port 0 for an ephemeral
    /// port; [`ServerHandle::addr`] reports the bound address.
    pub fn serve(self, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();

        let mut workers = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers.max(1) {
            let rx = rx.clone();
            let shared = self.shared.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    // A broken connection is the client's problem, not
                    // the server's: log-and-continue semantics.
                    let _ = handle_connection(&shared, stream);
                }
            }));
        }
        drop(rx);

        let accept_shutdown = shutdown.clone();
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Dropping `tx` here closes the channel and drains workers.
        });

        Ok(ServerHandle {
            addr: local,
            shared: self.shared,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }
}

/// A running server: the bound address, counters, and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current write epoch (number of observable-change write
    /// batches; under sequential load, the number of successful
    /// mutations).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Statements executed so far (both protocols, errors included).
    pub fn queries(&self) -> u64 {
        self.shared.queries.load(Ordering::Relaxed)
    }

    /// Cache hits / misses so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.shared.cache.hits(), self.shared.cache.misses())
    }

    /// Events appended to the structured query log so far (0 when the
    /// log is disabled).
    pub fn query_log_events(&self) -> u64 {
        self.shared.qlog.as_ref().map_or(0, |q| q.events())
    }

    /// Entries currently in the slow-query ring.
    pub fn slow_log_len(&self) -> usize {
        self.shared
            .slow
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Graceful shutdown: stop accepting, let every in-flight
    /// statement finish and its reply reach the wire, then sync the
    /// storage tail before returning. Concretely: close the accept
    /// loop, half-close each live connection's **read** side (the
    /// worker finishes the statement it is on, writes the reply on the
    /// still-open write side, then reads EOF and exits), join the
    /// workers, lead any write slots left in the queue, and fsync the
    /// session's append tail. By return, every acked write is durable:
    /// a restart on the same files recovers all of them.
    pub fn shutdown(mut self) {
        let start = Instant::now();
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        {
            let conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers answer their own slots before exiting, so the queue
        // is normally empty here — but a worker that died on a write
        // error must not strand a queued statement unanswered forever.
        {
            let mut session = self
                .shared
                .session
                .write()
                .unwrap_or_else(|e| e.into_inner());
            let leftovers = !self
                .shared
                .write_queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty();
            if leftovers {
                self.shared.lead_write_batch(&mut session);
            }
            // Commits already fsync individually; this is a final
            // belt-and-braces sync of the tail (a no-op when clean).
            let _ = session.sync_storage();
        }
        self.shared
            .instruments
            .shutdown_drain_us
            .set(elapsed_us(start) as i64);
    }
}

/// Serve one accepted connection to completion: register it (so
/// graceful shutdown can half-close it), arm the idle timeout, serve,
/// deregister. An idle-timeout or shutdown half-close surfaces as a
/// read error inside; closing quietly is the intended outcome, not a
/// failure to report.
fn handle_connection(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    shared.instruments.connections.inc();
    // Connection id: stamps this connection's query-log events and
    // keys the live-connection registry.
    let client = shared.clients.fetch_add(1, Ordering::Relaxed);
    // Responses are small and latency-bound; never wait on Nagle.
    stream.set_nodelay(true).ok();
    if shared.idle_timeout_us > 0 {
        // The slowloris guard: a peer may not sit mid-request (or
        // mid-header) longer than this between reads.
        stream
            .set_read_timeout(Some(Duration::from_micros(shared.idle_timeout_us)))
            .ok();
    }
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(client, clone);
    }
    let result = serve_connection(shared, stream, client);
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&client);
    match result {
        // WouldBlock is what Unix read timeouts actually return;
        // TimedOut covers other platforms.
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Ok(())
        }
        other => other,
    }
}

/// The protocol loop for one connection (line protocol or HTTP shim).
fn serve_connection(shared: &Shared, stream: TcpStream, client: u64) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Ok(()); // connected and left
    }
    match classify_first_line(first.trim_end_matches(['\r', '\n'])) {
        FirstLine::Http { method, target } => {
            let Some(body) = read_http_request_rest(&mut reader)? else {
                return write_http_json(
                    &mut writer,
                    "413 Payload Too Large",
                    r#"{"ok":false,"error":"request body exceeds 1 MiB"}"#,
                );
            };
            handle_http(shared, &mut writer, &method, &target, &body, client)
        }
        FirstLine::Proql(stmt) => {
            serve_line_statement(shared, &mut writer, &stmt, client)?;
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line)? == 0 {
                    return Ok(());
                }
                serve_line_statement(
                    shared,
                    &mut writer,
                    line.trim_end_matches(['\r', '\n']),
                    client,
                )?;
            }
        }
    }
}

/// Execute one line-protocol statement and write its framed response.
/// Blank lines are acknowledged with an empty OK so a scripted client
/// can pipeline them without desynchronizing.
fn serve_line_statement(
    shared: &Shared,
    writer: &mut impl Write,
    line: &str,
    client: u64,
) -> std::io::Result<()> {
    let trimmed = line.trim().trim_end_matches(';').trim();
    if trimmed.is_empty() {
        return write_ok(
            writer,
            "",
            false,
            shared.epoch.load(Ordering::Acquire),
            0,
            0,
        );
    }
    let outcome = shared.run_statement(trimmed, client);
    match &outcome.result {
        Ok(result) => write_ok(
            writer,
            &result.text,
            outcome.cache_hit,
            outcome.epoch,
            outcome.time_us,
            outcome.reads,
        ),
        Err(ErrorReply::Message(message)) => write_err(writer, message),
        Err(ErrorReply::Busy { retry_after_ms }) => write_busy(writer, *retry_after_ms),
    }
}

/// Answer one HTTP request (`POST /query`, `GET /explain`) and close.
fn handle_http(
    shared: &Shared,
    writer: &mut impl Write,
    method: &str,
    target: &str,
    body: &str,
    client: u64,
) -> std::io::Result<()> {
    match (method, target) {
        ("POST", "/query") => {
            let outcome = shared.run_statement(body.trim(), client);
            match &outcome.result {
                Ok(result) => write_http_json(
                    writer,
                    "200 OK",
                    &format!(
                        r#"{{"ok":true,"cache_hit":{},"epoch":{},"time_us":{},"reads":{},"result":{}}}"#,
                        outcome.cache_hit,
                        outcome.epoch,
                        outcome.time_us,
                        outcome.reads,
                        result.json
                    ),
                ),
                Err(ErrorReply::Message(message)) => write_http_json(
                    writer,
                    "400 Bad Request",
                    &format!(r#"{{"ok":false,"error":"{}"}}"#, json_escape(message)),
                ),
                Err(ErrorReply::Busy { retry_after_ms }) => write_http_json(
                    writer,
                    "503 Service Unavailable",
                    &format!(r#"{{"ok":false,"busy":true,"retry_after_ms":{retry_after_ms}}}"#),
                ),
            }
        }
        ("GET", "/metrics") => {
            // Refresh the heap gauges from live state first: memory is
            // sampled at scrape time, not maintained per-operation.
            shared.refresh_heap_gauges();
            // The whole process's registry, not just this server: the
            // proql and storage layers publish here too.
            write_http_text(writer, "200 OK", &obs::registry().render_prometheus())
        }
        ("GET", t) if t == "/log" || t.starts_with("/log?") => {
            let n = t
                .split_once('?')
                .map(|(_, qs)| qs)
                .and_then(|qs| {
                    qs.split('&')
                        .find_map(|pair| pair.strip_prefix("n=").and_then(|v| v.parse().ok()))
                })
                .unwrap_or(20usize);
            match &shared.qlog {
                Some(qlog) => {
                    let lines = qlog.recent(n);
                    write_http_json(
                        writer,
                        "200 OK",
                        &format!(
                            r#"{{"ok":true,"count":{},"events":[{}]}}"#,
                            lines.len(),
                            lines.join(",")
                        ),
                    )
                }
                None => write_http_json(
                    writer,
                    "404 Not Found",
                    r#"{"ok":false,"error":"query log disabled (configure ServerConfig.query_log)"}"#,
                ),
            }
        }
        ("GET", t) if t == "/slow" || t.starts_with("/slow?") => {
            let n = t
                .split_once('?')
                .map(|(_, qs)| qs)
                .and_then(|qs| {
                    qs.split('&')
                        .find_map(|pair| pair.strip_prefix("n=").and_then(|v| v.parse().ok()))
                })
                .unwrap_or(20usize);
            write_http_json(writer, "200 OK", &shared.render_slow_json(n))
        }
        ("GET", t) if t == "/explain" || t.starts_with("/explain?") => {
            let q = t
                .split_once('?')
                .map(|(_, qs)| qs)
                .and_then(|qs| {
                    qs.split('&')
                        .find_map(|pair| pair.strip_prefix("q=").map(percent_decode))
                })
                .unwrap_or_default();
            if q.trim().is_empty() {
                return write_http_json(
                    writer,
                    "400 Bad Request",
                    r#"{"ok":false,"error":"missing query parameter q"}"#,
                );
            }
            // Lock first, then read the epoch: the reported epoch must
            // name the graph version the plan is computed against.
            let session = shared.session.read().unwrap_or_else(|e| e.into_inner());
            let epoch = shared.epoch.load(Ordering::Acquire);
            match session.explain(q.trim().trim_end_matches(';')) {
                Ok(plan) => write_http_json(
                    writer,
                    "200 OK",
                    &format!(
                        r#"{{"ok":true,"epoch":{epoch},"plan":"{}"}}"#,
                        json_escape(&plan)
                    ),
                ),
                Err(e) => write_http_json(
                    writer,
                    "400 Bad Request",
                    &format!(
                        r#"{{"ok":false,"error":"{}"}}"#,
                        json_escape(&e.to_string())
                    ),
                ),
            }
        }
        _ => write_http_json(
            writer,
            "404 Not Found",
            r#"{"ok":false,"error":"unknown endpoint (POST /query, GET /explain?q=..., GET /metrics, GET /slow?n=..., GET /log?n=...)"}"#,
        ),
    }
}
