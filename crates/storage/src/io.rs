//! The storage IO seam: every file operation this crate performs —
//! opening and reading logs, appending tail frames, fsyncing, the
//! temp-write/sync/rename/unlink dance of `COMPACT` — routes through
//! the [`StorageIo`] trait. Production uses the [`StdIo`] passthrough
//! (the [`default_io`] singleton); tests swap in [`FaultIo`], a
//! deterministic simulated disk that can fail the Nth IO call with a
//! chosen errno, truncate a write short, or "crash" — drop every
//! un-synced byte and freeze.
//!
//! ## Durability model
//!
//! [`StorageIo`] commits the crate to an explicit sync discipline:
//! `append` and `create` put bytes in the (simulated or real) page
//! cache, and only `sync` makes them crash-durable. `rename` and
//! `unlink` are modeled as atomic and immediately durable — the
//! guarantee journaling filesystems give for metadata — which is
//! exactly why COMPACT must `sync` its temp segment *before* the
//! rename: renaming an unsynced file and then crashing leaves a
//! truncated base, and [`FaultIo`]'s crash simulation reproduces that
//! outcome so the fault-injection harness can prove the sync is there.
//!
//! Every [`StdIo`] error except `NotFound` (an expected outcome probed
//! by recovery paths) increments `lipstick_storage_io_errors_total`.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use lipstick_core::obs::{self, Counter};

/// Every file operation the storage layer performs. Object-safe and
/// path-based: each call is one injectable IO step, so a fault harness
/// can enumerate failure points by counting calls.
pub trait StorageIo: Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Current file length in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Append bytes to the end of a file, creating it if absent. Not
    /// durable until [`sync`](StorageIo::sync).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Make a file's contents crash-durable (fsync).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Truncate a file to `len` bytes and sync the truncation.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Create (or truncate) a file with the given contents — the
    /// temp-file half of the write/sync/rename pattern. Not durable
    /// until [`sync`](StorageIo::sync).
    fn create(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically rename a file (durable once it returns).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file (durable once it returns).
    fn unlink(&self, path: &Path) -> io::Result<()>;
}

/// The process-wide IO-error counter; registered on first touch so the
/// series renders (at zero) on any `/metrics` exposition even before an
/// error occurs.
pub fn io_errors_counter() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| {
        obs::registry().counter(
            "lipstick_storage_io_errors_total",
            "Storage file operations that returned an error (NotFound probes excluded)",
        )
    })
}

/// Count a failed IO result, ignoring `NotFound` — recovery paths probe
/// for absent tails on purpose and those misses are not faults.
fn track<T>(result: io::Result<T>) -> io::Result<T> {
    if let Err(e) = &result {
        if e.kind() != io::ErrorKind::NotFound {
            io_errors_counter().inc();
        }
    }
    result
}

/// The default passthrough: real `std::fs`, one call per trait method.
/// This module is the **only** place in `crates/storage/src` allowed to
/// touch `std::fs` directly (enforced by `cargo run -p xtask -- lint`).
#[derive(Debug, Default, Clone, Copy)]
pub struct StdIo;

impl StorageIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        track(std::fs::read(path))
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        track(std::fs::metadata(path).map(|m| m.len()))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        track((|| {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            file.write_all(bytes)
        })())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        track(std::fs::File::open(path).and_then(|f| f.sync_all()))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        track((|| {
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(len)?;
            file.sync_all()
        })())
    }

    fn create(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        track(std::fs::write(path, bytes))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        track(std::fs::rename(from, to))
    }

    fn unlink(&self, path: &Path) -> io::Result<()> {
        track(std::fs::remove_file(path))
    }
}

/// The shared passthrough instance every `open()`-style convenience
/// constructor uses.
pub fn default_io() -> Arc<dyn StorageIo> {
    static IO: OnceLock<Arc<dyn StorageIo>> = OnceLock::new();
    IO.get_or_init(|| {
        io_errors_counter();
        Arc::new(StdIo)
    })
    .clone()
}

/// What a scheduled fault does when its turn comes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the call with the given OS errno (e.g. 28 = ENOSPC,
    /// 5 = EIO) without touching the simulated disk.
    Errno(i32),
    /// Write only a prefix of the bytes, then fail the call — a torn
    /// write. Non-write calls degrade to a plain error.
    ShortWrite,
    /// Drop every un-synced byte on the simulated disk and freeze it:
    /// all further calls fail until [`FaultIo::thaw`], which models the
    /// machine coming back up.
    Crash,
}

/// One simulated file: live contents plus the crash-durable watermark.
#[derive(Debug, Default, Clone)]
struct FileState {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash. Advanced by `sync`; a crash
    /// truncates `data` back to this.
    synced: usize,
}

#[derive(Default)]
struct DiskState {
    files: HashMap<PathBuf, FileState>,
    /// Trait calls performed so far (the fault schedule's clock).
    ops: u64,
    /// `(op index, kind)`: inject when `ops` reaches the index.
    fault: Option<(u64, FaultKind)>,
    frozen: bool,
}

impl DiskState {
    fn crash(&mut self) {
        for file in self.files.values_mut() {
            file.data.truncate(file.synced);
        }
        self.frozen = true;
    }
}

/// A deterministic in-memory disk with scheduled fault injection. Clone
/// handles share one disk, so the IO a store performs is observable (and
/// seedable) from the test that owns the other handle.
#[derive(Clone, Default)]
pub struct FaultIo {
    state: Arc<Mutex<DiskState>>,
}

fn injected(kind: FaultKind, op: u64) -> io::Error {
    match kind {
        FaultKind::Errno(errno) => io::Error::from_raw_os_error(errno),
        FaultKind::ShortWrite => io::Error::new(
            io::ErrorKind::WriteZero,
            format!("injected short write at io op {op}"),
        ),
        FaultKind::Crash => io::Error::other(format!("injected crash at io op {op}")),
    }
}

impl FaultIo {
    pub fn new() -> FaultIo {
        FaultIo::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiskState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Trait calls performed so far — run the workload once cleanly,
    /// read this, and you have the enumeration bound for fail-at-op-k.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Schedule `kind` to fire on the `at`-th trait call from now on
    /// (0-based, counted from construction). One-shot: later calls
    /// succeed again (except after a crash, which freezes the disk).
    pub fn set_fault(&self, at: u64, kind: FaultKind) {
        self.lock().fault = Some((at, kind));
    }

    pub fn clear_fault(&self) {
        self.lock().fault = None;
    }

    /// Un-freeze a crashed disk — the simulated machine reboots with
    /// only the synced bytes surviving (already applied at crash time).
    pub fn thaw(&self) {
        self.lock().frozen = false;
    }

    /// The live contents of a simulated file (`None` if absent) — what
    /// a reader would see *before* any crash.
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).map(|f| f.data.clone())
    }

    /// Count one op and return the fault to inject, if it is this op's
    /// turn. Errors out immediately (without counting) while frozen.
    fn begin_op(state: &mut DiskState) -> io::Result<Option<(FaultKind, u64)>> {
        if state.frozen {
            return Err(io::Error::other("simulated disk is frozen after a crash"));
        }
        let op = state.ops;
        state.ops += 1;
        match state.fault {
            Some((at, kind)) if at == op => {
                state.fault = None;
                if kind == FaultKind::Crash {
                    state.crash();
                }
                Ok(Some((kind, op)))
            }
            _ => Ok(None),
        }
    }
}

impl StorageIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.lock();
        if let Some((kind, op)) = Self::begin_op(&mut st)? {
            return Err(injected(kind, op));
        }
        st.files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such simulated file"))
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let mut st = self.lock();
        if let Some((kind, op)) = Self::begin_op(&mut st)? {
            return Err(injected(kind, op));
        }
        st.files
            .get(path)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such simulated file"))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        match Self::begin_op(&mut st)? {
            Some((FaultKind::ShortWrite, op)) => {
                let keep = bytes.len() / 2;
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.data.extend_from_slice(&bytes[..keep]);
                Err(injected(FaultKind::ShortWrite, op))
            }
            Some((kind, op)) => Err(injected(kind, op)),
            None => {
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.data.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if let Some((kind, op)) = Self::begin_op(&mut st)? {
            return Err(injected(kind, op));
        }
        match st.files.get_mut(path) {
            Some(file) => {
                file.synced = file.data.len();
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut st = self.lock();
        if let Some((kind, op)) = Self::begin_op(&mut st)? {
            return Err(injected(kind, op));
        }
        match st.files.get_mut(path) {
            Some(file) => {
                let len = usize::try_from(len).unwrap_or(usize::MAX);
                file.data.truncate(len);
                file.synced = file.synced.min(len);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }

    fn create(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        match Self::begin_op(&mut st)? {
            Some((FaultKind::ShortWrite, op)) => {
                let keep = bytes.len() / 2;
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.data = bytes[..keep].to_vec();
                file.synced = 0;
                Err(injected(FaultKind::ShortWrite, op))
            }
            Some((kind, op)) => Err(injected(kind, op)),
            None => {
                let file = st.files.entry(path.to_path_buf()).or_default();
                file.data = bytes.to_vec();
                file.synced = 0;
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if let Some((kind, op)) = Self::begin_op(&mut st)? {
            return Err(injected(kind, op));
        }
        match st.files.remove(from) {
            Some(file) => {
                st.files.insert(to.to_path_buf(), file);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }

    fn unlink(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if let Some((kind, op)) = Self::begin_op(&mut st)? {
            return Err(injected(kind, op));
        }
        match st.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no such simulated file",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn fault_io_appends_syncs_and_survives_a_crash_to_the_synced_prefix() {
        let io = FaultIo::new();
        io.create(&p("a"), b"hello").unwrap();
        io.sync(&p("a")).unwrap();
        io.append(&p("a"), b" world").unwrap();
        assert_eq!(io.read(&p("a")).unwrap(), b"hello world");
        // Crash: the un-synced suffix evaporates, the disk freezes.
        let next = io.ops();
        io.set_fault(next, FaultKind::Crash);
        assert!(io.read(&p("a")).is_err());
        assert!(io.read(&p("a")).is_err(), "frozen disk stays down");
        io.thaw();
        assert_eq!(io.read(&p("a")).unwrap(), b"hello");
    }

    #[test]
    fn errno_faults_fire_once_at_the_scheduled_op() {
        let io = FaultIo::new();
        io.create(&p("a"), b"x").unwrap(); // op 0
        io.set_fault(1, FaultKind::Errno(28)); // ENOSPC on op 1
        let err = io.append(&p("a"), b"y").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        // One-shot: the retry goes through and the data is intact.
        io.append(&p("a"), b"y").unwrap();
        assert_eq!(io.read(&p("a")).unwrap(), b"xy");
    }

    #[test]
    fn short_writes_leave_a_torn_prefix() {
        let io = FaultIo::new();
        io.create(&p("a"), b"").unwrap();
        io.set_fault(1, FaultKind::ShortWrite);
        assert!(io.append(&p("a"), b"abcdef").is_err());
        assert_eq!(io.read(&p("a")).unwrap(), b"abc", "half the write landed");
    }

    #[test]
    fn rename_moves_state_and_unlink_removes_it() {
        let io = FaultIo::new();
        io.create(&p("tmp"), b"data").unwrap();
        io.sync(&p("tmp")).unwrap();
        io.rename(&p("tmp"), &p("final")).unwrap();
        assert!(io.read(&p("tmp")).is_err());
        assert_eq!(io.read(&p("final")).unwrap(), b"data");
        io.unlink(&p("final")).unwrap();
        assert_eq!(
            io.read(&p("final")).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn renaming_an_unsynced_file_then_crashing_truncates_it() {
        // The failure COMPACT's explicit temp-sync exists to prevent:
        // rename is durable but the data behind it is not.
        let io = FaultIo::new();
        io.create(&p("tmp"), b"unsynced").unwrap();
        io.rename(&p("tmp"), &p("base")).unwrap();
        let next = io.ops();
        io.set_fault(next, FaultKind::Crash);
        assert!(io.len(&p("base")).is_err());
        io.thaw();
        assert_eq!(io.read(&p("base")).unwrap(), b"", "data never synced");
    }

    #[test]
    fn std_io_round_trips_and_counts_errors() {
        let dir = std::env::temp_dir().join(format!("lipstick-stdio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        let io = StdIo;
        io.create(&path, b"abc").unwrap();
        io.append(&path, b"def").unwrap();
        io.sync(&path).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"abcdef");
        assert_eq!(io.len(&path).unwrap(), 6);
        io.truncate(&path, 2).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"ab");
        let moved = dir.join("moved.bin");
        io.rename(&path, &moved).unwrap();
        io.unlink(&moved).unwrap();

        // NotFound probes are not counted as IO errors...
        let before = io_errors_counter().get();
        assert!(io.read(&dir.join("missing")).is_err());
        assert_eq!(io_errors_counter().get(), before);
        // ...but a real failure is (reading a directory as a file).
        assert!(io.read(&dir).is_err());
        assert!(io_errors_counter().get() > before);
        std::fs::remove_dir_all(&dir).ok();
    }
}
