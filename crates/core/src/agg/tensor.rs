//! Aggregated values with provenance: formal sums `Σᵢ tᵢ ⊗ vᵢ`.

use std::fmt;

use lipstick_nrel::{NrelError, Value};

use super::aggop::AggOp;
use crate::semiring::eval::{eval_expr, Valuation};
use crate::semiring::natural::Natural;
use crate::semiring::ProvExpr;

/// One tensor term `t ⊗ v`: the provenance `t` of a tuple paired with the
/// value `v` of its aggregated attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorTerm {
    pub prov: ProvExpr,
    pub value: Value,
}

impl fmt::Display for TensorTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊗ {}", self.prov, self.value)
    }
}

/// An aggregate value as a formal sum, e.g.
/// `COUNT: C2 ⊗ 1 + C3 ⊗ 1` for `N70` in the paper's Figure 2(c).
///
/// The formal sum is *symbolic*: it does not commit to which input tuples
/// are present. [`AggValue::evaluate`] resolves it under a counting
/// valuation — each term's value participates with the multiplicity of
/// its provenance — enabling the paper's what-if recomputation ("the
/// COUNT aggregate is now applied to a single value … we can easily
/// re-compute its value", Example 4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct AggValue {
    pub op: AggOp,
    pub terms: Vec<TensorTerm>,
}

impl AggValue {
    /// Build from (provenance, value) pairs.
    pub fn new(op: AggOp, terms: Vec<(ProvExpr, Value)>) -> Self {
        AggValue {
            op,
            terms: terms
                .into_iter()
                .map(|(prov, value)| TensorTerm { prov, value })
                .collect(),
        }
    }

    /// Evaluate under a counting valuation: a term whose provenance has
    /// multiplicity n contributes its value n times. With the all-ones
    /// valuation this is the ordinary aggregate of the recorded values.
    pub fn evaluate(&self, v: &Valuation<'_, Natural>) -> Result<Value, NrelError> {
        let mut values = Vec::with_capacity(self.terms.len());
        for term in &self.terms {
            let mult = eval_expr(&term.prov, v).0;
            for _ in 0..mult {
                values.push(term.value.clone());
            }
        }
        self.op.apply(&values)
    }

    /// Evaluate with every token present once (the "as recorded" value).
    pub fn current_value(&self) -> Result<Value, NrelError> {
        self.evaluate(&Valuation::ones())
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.op)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AggValue {
        AggValue::new(
            AggOp::Count,
            vec![
                (ProvExpr::tok("C2"), Value::Int(1)),
                (ProvExpr::tok("C3"), Value::Int(1)),
            ],
        )
    }

    #[test]
    fn count_with_all_present() {
        assert_eq!(sample().current_value().unwrap(), Value::Int(2));
    }

    #[test]
    fn deletion_recomputes_count() {
        // Example 4.3: delete C2 → COUNT over the single remaining value.
        let v = Valuation::with_default(Natural(1)).set("C2", Natural(0));
        assert_eq!(sample().evaluate(&v).unwrap(), Value::Int(1));
    }

    #[test]
    fn sum_respects_multiplicity() {
        let agg = AggValue::new(AggOp::Sum, vec![(ProvExpr::tok("a"), Value::Int(10))]);
        let v = Valuation::with_default(Natural(3));
        assert_eq!(agg.evaluate(&v).unwrap(), Value::Int(30));
    }

    #[test]
    fn min_over_survivors() {
        let agg = AggValue::new(
            AggOp::Min,
            vec![
                (ProvExpr::tok("x"), Value::Float(5.0)),
                (ProvExpr::tok("y"), Value::Float(7.0)),
            ],
        );
        let v = Valuation::with_default(Natural(1)).set("x", Natural(0));
        assert_eq!(agg.evaluate(&v).unwrap(), Value::Float(7.0));
    }

    #[test]
    fn all_deleted_yields_null() {
        let v = Valuation::with_default(Natural(0));
        let agg = AggValue::new(AggOp::Max, vec![(ProvExpr::tok("x"), Value::Int(1))]);
        assert_eq!(agg.evaluate(&v).unwrap(), Value::Null);
    }

    #[test]
    fn display_shows_tensors() {
        let s = sample().to_string();
        assert!(s.contains("⊗"));
        assert!(s.starts_with("COUNT("));
    }
}
