//! Bags: unordered multisets of tuples.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::value::Tuple;

/// An unordered bag (multiset) of tuples — the collection type of the
/// nested relational model (paper §2.1: "A Pig Latin relation is an
/// unordered bag of tuples").
///
/// Internally the tuples are kept in insertion order (which the engine
/// exploits so that provenance annotations stored *positionally alongside*
/// a bag stay aligned), but equality, ordering and hashing are
/// **order-insensitive**: two bags are equal iff they contain the same
/// tuples with the same multiplicities.
#[derive(Debug, Clone, Default)]
pub struct Bag {
    tuples: Vec<Tuple>,
}

impl Bag {
    /// The empty bag.
    pub fn empty() -> Self {
        Bag { tuples: Vec::new() }
    }

    /// Build a bag from tuples (multiplicities preserved).
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        Bag { tuples }
    }

    /// Number of tuples, counting multiplicity.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the bag holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple.
    pub fn push(&mut self, t: Tuple) {
        self.tuples.push(t);
    }

    /// Iterate over the tuples in internal (insertion) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice, in internal order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consume the bag, yielding its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Multiplicity of `t` in the bag.
    pub fn multiplicity(&self, t: &Tuple) -> usize {
        self.tuples.iter().filter(|x| *x == t).count()
    }

    /// Canonical multiset view: tuple → multiplicity, sorted by tuple.
    /// This is the basis for order-insensitive `Eq`/`Ord`/`Hash`.
    pub fn canonical(&self) -> BTreeMap<&Tuple, usize> {
        let mut m: BTreeMap<&Tuple, usize> = BTreeMap::new();
        for t in &self.tuples {
            *m.entry(t).or_insert(0) += 1;
        }
        m
    }

    /// Bag union (additive: multiplicities sum).
    pub fn union(&self, other: &Bag) -> Bag {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.tuples);
        v.extend_from_slice(&other.tuples);
        Bag { tuples: v }
    }

    /// Set of distinct tuples (each with multiplicity 1), in sorted order.
    pub fn distinct(&self) -> Bag {
        let mut keys: Vec<&Tuple> = self.canonical().into_keys().collect();
        keys.sort();
        Bag {
            tuples: keys.into_iter().cloned().collect(),
        }
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.canonical() == other.canonical()
    }
}
impl Eq for Bag {}

impl PartialOrd for Bag {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bag {
    fn cmp(&self, other: &Self) -> Ordering {
        let a = self.canonical();
        let b = other.canonical();
        a.cmp(&b)
    }
}

impl Hash for Bag {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let canon = self.canonical();
        state.write_usize(canon.len());
        for (t, m) in canon {
            t.hash(state);
            state.write_usize(m);
        }
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Bag {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Bag {
            tuples: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Bag {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Bag {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::collections::hash_map::DefaultHasher;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    fn hash_of(b: &Bag) -> u64 {
        let mut h = DefaultHasher::new();
        b.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_is_order_insensitive() {
        let a = Bag::from_tuples(vec![t(&[1]), t(&[2]), t(&[1])]);
        let b = Bag::from_tuples(vec![t(&[2]), t(&[1]), t(&[1])]);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn equality_respects_multiplicity() {
        let a = Bag::from_tuples(vec![t(&[1]), t(&[1])]);
        let b = Bag::from_tuples(vec![t(&[1])]);
        assert_ne!(a, b);
    }

    #[test]
    fn union_adds_multiplicities() {
        let a = Bag::from_tuples(vec![t(&[1])]);
        let b = Bag::from_tuples(vec![t(&[1]), t(&[2])]);
        let u = a.union(&b);
        assert_eq!(u.multiplicity(&t(&[1])), 2);
        assert_eq!(u.multiplicity(&t(&[2])), 1);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn distinct_collapses() {
        let a = Bag::from_tuples(vec![t(&[2]), t(&[1]), t(&[2])]);
        let d = a.distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d.multiplicity(&t(&[2])), 1);
    }

    #[test]
    fn display_shape() {
        let a = Bag::from_tuples(vec![t(&[1, 2])]);
        assert_eq!(a.to_string(), "{(1, 2)}");
    }

    #[test]
    fn nested_bag_equality_inside_value() {
        let inner1 = Bag::from_tuples(vec![t(&[1]), t(&[2])]);
        let inner2 = Bag::from_tuples(vec![t(&[2]), t(&[1])]);
        let v1 = Value::Bag(inner1);
        let v2 = Value::Bag(inner2);
        assert_eq!(v1, v2);
    }
}
