//! Append-backed sessions (`Session::open_append`): mutations commit
//! durable tail records instead of promoting to resident, `ingest`
//! appends whole fragments, `COMPACT` folds the tail into a fresh
//! sealed segment — and through all of it the session's `records_read`
//! figure stays monotonic and the memory report accounts for the tail
//! overlay.

use lipstick_core::{GraphTracker, ProvGraph};
use lipstick_proql::{QueryOutput, Session};
use lipstick_storage::write_graph_v2;
use lipstick_workflowgen::dealers::{self, DealersParams};

fn dealers_graph(num_cars: usize, seed: u64) -> ProvGraph {
    let params = DealersParams {
        num_cars,
        num_exec: 2,
        seed,
    };
    let mut tracker = GraphTracker::new();
    dealers::run_declining(&params, &mut tracker).expect("dealers run");
    tracker.finish()
}

fn temp_log(name: &str, graph: &ProvGraph) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lipstick-proql-append");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    write_graph_v2(graph, &path).unwrap();
    // A stale tail from an earlier aborted run would otherwise replay
    // on open (the header binding only rejects tails for a *different*
    // base).
    let mut tail = path.clone().into_os_string();
    tail.push(".tail");
    std::fs::remove_file(tail).ok();
    path
}

fn nodes_of(out: &QueryOutput) -> Vec<u32> {
    out.nodes()
        .expect("node set")
        .nodes
        .iter()
        .map(|n| n.0)
        .collect()
}

/// `records_read` must never go backwards — not across reads, not
/// across append-committed mutations, and not across `COMPACT`, which
/// reopens the sealed base from scratch (the pre-compaction fault count
/// is banked, exactly like paged→resident promotion banks its reads).
#[test]
fn records_read_is_monotonic_across_mutations_and_compaction() {
    let g = dealers_graph(24, 7);
    let path = temp_log("monotonic.lpstk", &g);
    let mut session = Session::open_append(&path).unwrap();
    assert_eq!(session.records_read(), 0, "opening decodes no records");

    let mut floor = 0usize;
    let step = |session: &mut Session, stmt: &str, floor: &mut usize| {
        session.run_one(stmt).unwrap();
        let now = session.records_read();
        assert!(
            now >= *floor,
            "records_read went backwards after {stmt}: {} -> {now}",
            *floor
        );
        *floor = now;
    };

    step(&mut session, "MATCH base-nodes", &mut floor);
    assert!(floor > 0, "an uncached read faults records in");
    step(&mut session, "DELETE #0 PROPAGATE", &mut floor);
    step(&mut session, "MATCH m-nodes", &mut floor);
    step(&mut session, "COMPACT", &mut floor);
    step(&mut session, "MATCH base-nodes", &mut floor);
    assert_eq!(session.promotions(), 0);
    assert!(session.is_append(), "the backend never changes flavour");
}

/// `Session::ingest` parity: appending a fragment to an append session
/// (one durable tail record) and splicing the same fragment into a
/// resident session must yield the same ids and the same answers.
#[test]
fn ingest_agrees_between_append_and_resident_backends() {
    let base = dealers_graph(24, 7);
    let fragment = dealers_graph(6, 99);
    let path = temp_log("ingest.lpstk", &base);

    let mut append = Session::open_append(&path).unwrap();
    let mut resident = Session::load(&path).unwrap();

    let a_ids = append.ingest(&fragment).unwrap();
    let r_ids = resident.ingest(&fragment).unwrap();
    assert_eq!(a_ids, r_ids, "both backends assign the same new ids");
    assert_eq!(a_ids.len(), fragment.len());

    for stmt in [
        "MATCH base-nodes".to_string(),
        "MATCH m-nodes WHERE execution < 1".to_string(),
        format!("DESCENDANTS OF #{} DEPTH 2", a_ids[0].0),
        "COUNT(*) MATCH nodes".to_string(),
    ] {
        let a = append.run_one(&stmt).unwrap().to_string();
        let r = resident.run_one(&stmt).unwrap().to_string();
        // Node sets compare exactly; rendered costs are backend-shaped,
        // so compare counts through their full rendering only when the
        // statement has no visited figure.
        if let (Ok(a_out), Ok(r_out)) = (append.run_read(&stmt), resident.run_read(&stmt)) {
            if a_out.nodes().is_some() {
                assert_eq!(nodes_of(&a_out), nodes_of(&r_out), "{stmt}");
                continue;
            }
        }
        assert_eq!(a, r, "{stmt}");
    }
    assert_eq!(append.promotions(), 0);
    assert!(append.is_append());

    // An append session never promotes; COMPACT is the only way to
    // reorganize.
    let err = append.materialize().unwrap_err().to_string();
    assert!(err.contains("never promote"), "{err}");
}

/// The memory report accounts for the mutable tail: a non-empty
/// overlay shows up as the `tail_overlay` component, and compaction —
/// which folds everything back into the sealed base — shrinks it while
/// preserving every answer byte for byte.
#[test]
fn memory_report_accounts_for_the_tail_overlay() {
    let g = dealers_graph(24, 7);
    let path = temp_log("overlay-mem.lpstk", &g);
    let mut session = Session::open_append(&path).unwrap();

    let overlay_bytes = |session: &Session| -> usize {
        session
            .memory_report()
            .iter()
            .filter(|(_, component, _)| *component == "tail_overlay")
            .map(|(_, _, bytes)| *bytes)
            .sum()
    };

    let fragment = dealers_graph(6, 99);
    session.ingest(&fragment).unwrap();
    session.run_one("DELETE #0 PROPAGATE").unwrap();
    let dirty = overlay_bytes(&session);
    assert!(dirty > 0, "a non-empty tail must be accounted");
    let before = session.run_one("COUNT(*) MATCH nodes").unwrap().to_string();

    session.run_one("COMPACT").unwrap();
    let clean = overlay_bytes(&session);
    assert!(
        clean < dirty,
        "compaction must shrink the overlay accounting ({dirty} -> {clean})"
    );
    let after = session.run_one("COUNT(*) MATCH nodes").unwrap().to_string();
    assert_eq!(before, after, "compaction preserves answers");

    // And the compacted log is a plain sealed v2 segment: a fresh paged
    // session must see the identical graph.
    drop(session);
    let paged = Session::open(&path).unwrap();
    assert_eq!(
        paged.run_read("COUNT(*) MATCH nodes").unwrap().to_string(),
        after
    );
}
