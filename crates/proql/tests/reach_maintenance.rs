//! Property test: the incrementally-repaired reach index is
//! **bit-identical** to a from-scratch `ReachIndex::build` after random
//! delete/zoom sequences.
//!
//! The session repairs the closure in place on every mutation (deletion
//! subtracts the dead cone; zooms remap the affected region, growing
//! the index for appended composite nodes). This harness drives random
//! WorkflowGen graphs through random mutation scripts and compares the
//! maintained index against a fresh build after *every* step — in both
//! directions, at full bitset granularity, including capacities. The
//! case budget honours `PROPTEST_CASES` like the other property suites.

use lipstick_core::GraphTracker;
use lipstick_proql::testgen::{self, Rng, Vocab};
use lipstick_proql::Session;
use lipstick_workflowgen::arctic::{self, ArcticParams, Selectivity, Topology};
use lipstick_workflowgen::dealers::{self, DealersParams};

/// Mutations per generated graph.
const MUTATIONS_PER_GRAPH: usize = 12;

fn case_budget() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

fn random_graph(rng: &mut Rng) -> lipstick_core::ProvGraph {
    let mut tracker = GraphTracker::new();
    if rng.chance(50) {
        let params = DealersParams {
            num_cars: 6 + rng.below(16),
            num_exec: 1 + rng.below(3),
            seed: rng.next_u64(),
        };
        dealers::run_declining(&params, &mut tracker).expect("dealers run");
    } else {
        let params = ArcticParams {
            stations: 2 + rng.below(4),
            topology: match rng.below(3) {
                0 => Topology::Serial,
                1 => Topology::Parallel,
                _ => Topology::Dense { fanout: 2 },
            },
            selectivity: [
                Selectivity::All,
                Selectivity::Season,
                Selectivity::Month,
                Selectivity::Year,
            ][rng.below(4)],
            num_exec: 1 + rng.below(2),
            seed: rng.next_u64(),
        };
        arctic::run(&params, &mut tracker).expect("arctic run");
    }
    tracker.finish()
}

#[test]
fn repaired_index_is_bit_identical_to_fresh_build() {
    let budget = case_budget();
    let mut rng = Rng::new(0x005e_a1c1_050f_f1ce);
    let mut executed = 0usize;

    while executed < budget {
        let graph = random_graph(&mut rng);
        let vocab = Vocab::from_graph(&graph);
        let mut session = Session::new(graph);
        session.run_one("BUILD INDEX").unwrap();
        assert_eq!(session.index_builds(), 1);

        for _ in 0..MUTATIONS_PER_GRAPH.min(budget - executed) {
            let stmt = testgen::mutation(&vocab, &mut rng);
            // Failed mutations (dangling deletes, double zooms) must
            // leave the index untouched; successful ones must repair it
            // exactly. Either way the oracle below decides.
            let _ = session.run_one(&stmt.to_string());
            let index = session
                .reach_index()
                .expect("mutations repair, never drop, the index");
            assert!(
                index.matches_fresh_build(session.graph()),
                "maintained index diverged from fresh build after: {stmt}"
            );
            executed += 1;
        }

        // Incremental maintenance means the build counter never moved,
        // no matter what the mutation script did.
        assert_eq!(session.index_builds(), 1, "silent rebuild detected");
    }
}
