//! Figure 5(a)/(b): run-time overhead of provenance tracking.
//!
//! Benchmarks the Car dealerships and Arctic stations workflows with
//! and without provenance capture. The paper's observation to
//! reproduce: tracking costs a constant factor (≈2-3× for the
//! state-heavy dealers, ≈15-35% for the Arctic topologies), and
//! dealer time grows with the number of prior executions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lipstick_bench::{run_arctic, run_dealers};
use lipstick_workflowgen::{ArcticParams, DealersParams, Selectivity, Topology};

fn fig5a_dealers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_dealers");
    group.sample_size(10);
    for num_exec in [5usize, 10, 20] {
        let params = DealersParams {
            num_cars: 400,
            num_exec,
            seed: 1_000_003,
        };
        group.bench_with_input(BenchmarkId::new("no_prov", num_exec), &params, |b, p| {
            b.iter(|| run_dealers(p, false).executions)
        });
        group.bench_with_input(BenchmarkId::new("prov", num_exec), &params, |b, p| {
            b.iter(|| run_dealers(p, true).executions)
        });
    }
    group.finish();
}

fn fig5b_arctic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_arctic");
    group.sample_size(10);
    for (name, topology) in [
        ("parallel", Topology::Parallel),
        ("dense6", Topology::Dense { fanout: 6 }),
        ("serial", Topology::Serial),
    ] {
        let params = ArcticParams {
            stations: 24,
            topology,
            selectivity: Selectivity::Month,
            num_exec: 5,
            seed: 7,
        };
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/no_prov"), 24),
            &params,
            |b, p| b.iter(|| run_arctic(p, false).executions),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{name}/prov"), 24),
            &params,
            |b, p| b.iter(|| run_arctic(p, true).executions),
        );
    }
    group.finish();
}

criterion_group!(benches, fig5a_dealers, fig5b_arctic);
criterion_main!(benches);
