//! Graph transformation operations and provenance queries (paper §4).
//!
//! - [`zoom`]: ZoomOut / ZoomIn between fine- and coarse-grained views;
//! - [`deletion`]: deletion propagation for what-if analysis;
//! - [`subgraph`]: ancestor/descendant/sibling subgraph extraction
//!   (the Query Processor's third query, §5.1);
//! - [`dependency`]: "does n depend on n′?" via deletion propagation;
//! - [`reach`]: an optional precomputed reachability index (the §5.1
//!   memory/time trade-off, measured by the `ablation_reach` bench).

pub mod deletion;
pub mod dependency;
pub mod error;
pub mod reach;
pub mod subgraph;
pub mod zoom;

pub use deletion::{propagate_deletion, propagate_deletion_inplace, DeletionReport};
pub use dependency::depends_on;
pub use error::QueryError;
pub use reach::ReachIndex;
pub use subgraph::{
    ancestors_bounded, descendants_bounded, subgraph, traverse, BoundedResult, Direction,
    SubgraphResult, TraversalStats,
};
pub use zoom::{apply_zoom_out, plan_zoom_out, zoom_in, zoom_out, CompositePlan, ZoomModulePlan};
