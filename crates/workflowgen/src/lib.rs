//! # lipstick-workflowgen — the WorkflowGen benchmark (paper §5.2)
//!
//! Generates and executes the two workload families of the Lipstick
//! evaluation:
//!
//! - **Car dealerships** ([`dealers`]): the paper's running example,
//!   with a fixed topology — a bid-request module fanning out to four
//!   dealership modules (each with `Cars` / `SoldCars` /
//!   `InventoryBids` state and a `CalcBid` black box), a minimum-bid
//!   aggregator, a user-choice input, an accept/decline router, the
//!   purchase phase (the dealers invoked a second time), and a final
//!   car-output module. A *run* is a sequence of executions that ends
//!   when the buyer purchases a car or `num_exec` is reached.
//! - **Arctic stations** ([`arctic`]): meteorological station modules
//!   over monthly observations (1961–2000), in *serial*, *parallel*, or
//!   *dense* topologies with configurable fan-out, computing running
//!   minimum air temperatures; the `selectivity` parameter (all /
//!   season / month / year) controls which fraction of each station's
//!   state contributes to its output — and therefore the provenance
//!   graph's density.
//!
//! The paper's real NSIDC dataset ("Meteorological data from the
//! Russian Arctic, 1961–2000") is substituted by a deterministic
//! synthetic generator with the same shape (see `DESIGN.md`).

pub mod arctic;
pub mod dealers;

pub use arctic::{ArcticParams, Selectivity, Topology};
pub use dealers::DealersParams;
