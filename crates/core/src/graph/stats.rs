//! Graph statistics.
//!
//! Used by EXPERIMENTS.md for the paper's §5.5 fine-grainedness analysis
//! (how many state/input tuples an output depends on) and by the
//! representation ablation.

use std::collections::BTreeMap;

use super::ProvGraph;

/// Node/edge counts of the visible graph, broken down by node kind.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub p_nodes: usize,
    pub v_nodes: usize,
    pub by_kind: BTreeMap<&'static str, usize>,
}

/// Compute statistics over the visible graph.
pub fn stats(graph: &ProvGraph) -> GraphStats {
    let mut s = GraphStats {
        edges: graph.visible_edge_count(),
        ..GraphStats::default()
    };
    for (_, node) in graph.iter_visible() {
        s.nodes += 1;
        if node.kind.is_value_node() {
            s.v_nodes += 1;
        } else {
            s.p_nodes += 1;
        }
        *s.by_kind.entry(node.kind.name()).or_insert(0) += 1;
    }
    s
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} nodes ({} p-nodes, {} v-nodes), {} edges",
            self.nodes, self.p_nodes, self.v_nodes, self.edges
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {kind:>16}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggOp;
    use lipstick_nrel::Value;

    #[test]
    fn counts_by_kind() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        let b = g.add_base("b");
        let p = g.add_plus(&[a, b]);
        g.add_agg(AggOp::Count, &[(p, Value::Int(1))]);
        let s = stats(&g);
        assert_eq!(s.by_kind["base_tuple"], 2);
        assert_eq!(s.by_kind["plus"], 1);
        assert_eq!(s.by_kind["agg"], 1);
        assert_eq!(s.by_kind["tensor"], 1);
        assert_eq!(s.by_kind["const"], 1);
        assert_eq!(s.v_nodes, 3);
        assert_eq!(s.p_nodes, 3);
        assert_eq!(s.nodes, 6);
        // edges: a→p, b→p, p→tensor, const→tensor, tensor→agg
        assert_eq!(s.edges, 5);
    }

    #[test]
    fn stats_ignore_deleted() {
        let mut g = ProvGraph::new();
        let a = g.add_base("a");
        g.node_mut(a).deleted = true;
        assert_eq!(stats(&g).nodes, 0);
    }
}
