//! ProQL lexer.
//!
//! Keywords are not reserved at the lexical level: everything wordy is
//! an [`Tok::Ident`] and the parser matches keywords case-insensitively,
//! so module names like `Mdealer1` or `in-flight-stats` need no
//! quoting. Identifiers may contain `-` (ProQL has no arithmetic), which
//! is what makes the `m-nodes` class names single tokens.
//!
//! Every token carries a [`Span`] — a half-open **byte** range into the
//! original source — so the analyzer ([`crate::analyze`]) and the shell
//! can point diagnostics at the exact offending text.

use crate::error::{ProqlError, Result};

/// A half-open byte range `start..end` into the source text.
///
/// Offsets are byte offsets (not char offsets), so `&src[span.start..
/// span.end]` always slices the token's exact source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span at `at` (end-of-input diagnostics).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Bare word: keyword, class name, module name, field, …
    Ident(String),
    /// Single-quoted string literal (provenance tokens, module names).
    Str(String),
    /// Unsigned integer literal.
    Int(u64),
    /// `#123` — a node id reference.
    NodeId(u32),
    LParen,
    RParen,
    Comma,
    Semi,
    /// `*` — only used by `COUNT(*)`.
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::NodeId(n) => write!(f, "#{n}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Star => f.write_str("*"),
            Tok::Eq => f.write_str("="),
            Tok::Ne => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
        }
    }
}

/// A token together with its byte span in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// Tokenize a ProQL script. `--` starts a comment running to end of
/// line. Convenience wrapper over [`lex_spanned`] for callers that
/// don't need positions.
pub fn lex(input: &str) -> Result<Vec<Tok>> {
    Ok(lex_spanned(input)?.into_iter().map(|s| s.tok).collect())
}

/// Tokenize a ProQL script, attaching a byte [`Span`] to every token.
/// [`ProqlError::Lex`] positions are byte offsets into `input`.
pub fn lex_spanned(input: &str) -> Result<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut push = |tok: Tok, start: usize, end: usize| {
        out.push(SpannedTok {
            tok,
            span: Span::new(start, end),
        });
    };
    while i < bytes.len() {
        let Some(c) = input[i..].chars().next() else {
            break;
        };
        match c {
            _ if c.is_whitespace() => i += c.len_utf8(),
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Comment to end of line. '\n' is ASCII, so a byte scan
                // cannot land mid-codepoint.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push(Tok::LParen, i, i + 1);
                i += 1;
            }
            ')' => {
                push(Tok::RParen, i, i + 1);
                i += 1;
            }
            ',' => {
                push(Tok::Comma, i, i + 1);
                i += 1;
            }
            ';' => {
                push(Tok::Semi, i, i + 1);
                i += 1;
            }
            '*' => {
                push(Tok::Star, i, i + 1);
                i += 1;
            }
            '=' => {
                push(Tok::Eq, i, i + 1);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                push(Tok::Ne, i, i + 2);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Tok::Le, i, i + 2);
                    i += 2;
                } else {
                    push(Tok::Lt, i, i + 1);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(Tok::Ge, i, i + 2);
                    i += 2;
                } else {
                    push(Tok::Gt, i, i + 1);
                    i += 1;
                }
            }
            '\'' => {
                // The closing quote is ASCII and UTF-8 continuation
                // bytes never equal 0x27, so a byte scan is safe.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ProqlError::Lex {
                        pos: i,
                        message: "unterminated string literal".into(),
                    });
                }
                push(Tok::Str(input[start..j].to_string()), i, j + 1);
                i = j + 1;
            }
            '#' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(ProqlError::Lex {
                        pos: i,
                        message: "expected digits after '#'".into(),
                    });
                }
                let digits = &input[start..j];
                let id = digits.parse::<u32>().map_err(|_| ProqlError::Lex {
                    pos: i,
                    message: format!("node id #{digits} out of range"),
                })?;
                push(Tok::NodeId(id), i, j);
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let digits = &input[start..j];
                let n = digits.parse::<u64>().map_err(|_| ProqlError::Lex {
                    pos: start,
                    message: format!("integer {digits} out of range"),
                })?;
                push(Tok::Int(n), start, j);
                i = j;
            }
            _ if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let Some(ch) = input[j..].chars().next() else {
                        break;
                    };
                    if !is_ident_continue(ch) {
                        break;
                    }
                    j += ch.len_utf8();
                }
                push(Tok::Ident(input[start..j].to_string()), start, j);
                i = j;
            }
            other => {
                return Err(ProqlError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_statement_shapes() {
        let toks = lex("MATCH m-nodes WHERE module = 'Mdealer1';").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("MATCH".into()),
                Tok::Ident("m-nodes".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("module".into()),
                Tok::Eq,
                Tok::Str("Mdealer1".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_node_refs_ints_and_ne() {
        let toks = lex("DEPENDS(#42, 'C2') DEPTH 3 kind != delta").unwrap();
        assert!(toks.contains(&Tok::NodeId(42)));
        assert!(toks.contains(&Tok::Int(3)));
        assert!(toks.contains(&Tok::Ne));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = lex("-- a comment\n  STATS -- trailing\n").unwrap();
        assert_eq!(toks, vec![Tok::Ident("STATS".into())]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(lex("WHY 'C2"), Err(ProqlError::Lex { .. })));
    }

    #[test]
    fn bare_hash_is_an_error() {
        assert!(matches!(lex("# 12"), Err(ProqlError::Lex { .. })));
    }

    #[test]
    fn spans_are_byte_ranges_into_the_source() {
        let src = "MATCH m-nodes WHERE module = 'Mdealer1';";
        let toks = lex_spanned(src).unwrap();
        for t in &toks {
            let text = &src[t.span.start..t.span.end];
            match &t.tok {
                Tok::Ident(s) => assert_eq!(text, s),
                Tok::Str(s) => assert_eq!(text, format!("'{s}'")),
                Tok::Eq => assert_eq!(text, "="),
                Tok::Semi => assert_eq!(text, ";"),
                other => panic!("unexpected token {other:?}"),
            }
        }
        // The string literal span covers both quotes.
        let lit = toks.iter().find(|t| matches!(t.tok, Tok::Str(_))).unwrap();
        assert_eq!(lit.span, Span::new(29, 39));
    }

    #[test]
    fn spans_survive_multibyte_text_and_comments() {
        let src = "-- caf\u{e9}\nWHY 'caf\u{e9}'";
        let toks = lex_spanned(src).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(&src[toks[1].span.start..toks[1].span.end], "'caf\u{e9}'");
    }

    #[test]
    fn lex_error_position_is_a_byte_offset() {
        // Two two-byte 'é's before the offending '@': byte offset 11,
        // not char offset 9.
        let err = lex("caf\u{e9} caf\u{e9}@").unwrap_err();
        match err {
            ProqlError::Lex { pos, .. } => assert_eq!(pos, 11),
            other => panic!("expected lex error, got {other:?}"),
        }
    }
}
