//! Quickstart: run a Pig Latin script with provenance tracking, inspect
//! a result tuple's provenance polynomial, and ask a what-if question.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lipstick::core::semiring::boolean::Bools;
use lipstick::core::semiring::eval::{eval_expr, Valuation};
use lipstick::core::Semiring;
use lipstick::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Bind an input relation; every tuple gets a provenance token.
    let mut tracker = GraphTracker::new();
    let mut env = Env::new();
    env.bind_with_token_fn(
        "Cars",
        Schema::named(&[("CarId", DataType::Str), ("Model", DataType::Str)]),
        vec![
            tuple!["C1", "Accord"],
            tuple!["C2", "Civic"],
            tuple!["C3", "Civic"],
        ],
        &mut tracker,
        |_, _, t| t.get(0).unwrap().to_text().into_owned(), // token = CarId
    )?;

    // 2. Run a script: count cars per model.
    run_script(
        "ByModel = GROUP Cars BY Model;
         Counts  = FOREACH ByModel GENERATE group AS Model, COUNT(Cars) AS N;",
        &mut env,
        &mut tracker,
        &UdfRegistry::new(),
    )?;

    // 3. Inspect results with their provenance.
    let counts = env.relation("Counts").expect("bound by the script");
    let graph = tracker.finish();
    println!("Counts with provenance:");
    for row in &counts.rows {
        println!("  {}   ⟵   {}", row.tuple, graph.expr_of(row.ann.prov));
    }

    // 4. What-if: does the Civic count row survive without car C2?
    let civic_row = counts
        .rows
        .iter()
        .find(|r| r.tuple.get(0).unwrap() == &Value::str("Civic"))
        .expect("Civic group exists");
    let expr = graph.expr_of(civic_row.ann.prov);
    let survives = eval_expr(
        &expr,
        &Valuation::<Bools>::with_default(Bools::one()).set("C2", Bools(false)),
    );
    println!(
        "\nWithout C2, the Civic row {} (C3 still derives it).",
        if survives.0 { "survives" } else { "disappears" }
    );

    // 5. And the recorded COUNT value can be *recomputed* under the
    //    deletion, because aggregation provenance pairs each value with
    //    its tuple's annotation (t ⊗ v).
    let vref = civic_row.ann.vref(1).expect("COUNT field has a v-node");
    let agg = graph.agg_value_of(vref).expect("aggregate value");
    let v = Valuation::with_default(lipstick::core::semiring::natural::Natural(1))
        .set("C2", lipstick::core::semiring::natural::Natural(0));
    println!("COUNT recomputed without C2: {}", agg.evaluate(&v)?);
    Ok(())
}
